#include "chaos/schedule.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rtpb::chaos {

namespace {

TimePoint at_ms(std::int64_t ms) { return TimePoint::zero() + millis(ms); }

/// Scale an event count by intensity, keeping at least one when the base
/// count was positive (an "enabled" family should do *something*).
std::int64_t scale_count(std::int64_t base, double intensity) {
  if (base <= 0 || intensity <= 0.0) return 0;
  const auto scaled =
      static_cast<std::int64_t>(static_cast<double>(base) * intensity + 0.5);
  return std::max<std::int64_t>(1, scaled);
}

/// Probability quantised to 0.01 so the rendered reproducer is exact.
double percent(Rng& rng, std::int64_t lo, std::int64_t hi) {
  return static_cast<double>(rng.uniform(lo, hi)) / 100.0;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLossStorm: return "loss-storm";
    case FaultKind::kLinkDegradation: return "link-degradation";
    case FaultKind::kDuplicationBurst: return "duplication-burst";
    case FaultKind::kReorderBurst: return "reorder-burst";
    case FaultKind::kBurstLoss: return "burst-loss";
    case FaultKind::kCorruptionBurst: return "corruption-burst";
    case FaultKind::kCrashPrimary: return "crash-primary";
    case FaultKind::kCrashBackup: return "crash-backup";
    case FaultKind::kAddStandby: return "add-standby";
    case FaultKind::kPartitionPrimary: return "partition-primary";
    case FaultKind::kCpuSpike: return "cpu-spike";
    case FaultKind::kThrottleBandwidth: return "throttle-bandwidth";
    case FaultKind::kInflateLatency: return "inflate-latency";
    case FaultKind::kShardLossStorm: return "shard-loss-storm";
    case FaultKind::kCrashRestartPrimary: return "crash-restart-primary";
    case FaultKind::kCrashRestartBackup: return "crash-restart-backup";
  }
  return "?";
}

core::ServiceConfig ChaosOptions::hardened_config() {
  core::ServiceConfig c;
  // Lemma 2 admission: phase variance of client/update tasks is absorbed
  // up front, so a CPU running near its admission bound cannot cause the
  // brief out-of-window excursions the §4.2 test tolerates.
  c.variance_aware_admission = true;
  // Patient failure detection: ~600 ms to declare a peer dead.  With the
  // generator's link-fault probabilities capped at 0.35, the chance that
  // every heartbeat and every update in a 600 ms span is lost — the only
  // path to a false failover, i.e. split brain — is below 1e-9 per storm.
  c.ping_period = millis(50);
  c.ping_ack_timeout = millis(25);
  c.ping_max_misses = 12;
  return c;
}

net::LinkParams ChaosOptions::default_link() {
  net::LinkParams l;
  l.propagation = millis(1);
  l.jitter = micros(200);
  return l;
}

ChaosSchedule generate_schedule(std::uint64_t seed, const ChaosOptions& opts) {
  ChaosSchedule s;
  s.seed = seed;
  s.service_seed = derive_stream_seed(seed, kStreamService);
  const std::int64_t dur_ms = opts.duration.nanos() / 1'000'000;
  // Leave the first second for registration/state transfer and the last
  // quarter for recovery proof; too-short runs get no faults at all.
  const std::int64_t fault_floor = 1000;
  const std::int64_t fault_ceil = dur_ms * 3 / 4;

  if (opts.enable_loss_storms && fault_ceil > fault_floor + 500) {
    Rng rng{derive_stream_seed(seed, kStreamLoss)};
    const std::int64_t n = scale_count(rng.uniform(1, 3), opts.intensity);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t from = rng.uniform(fault_floor, fault_ceil);
      const std::int64_t len = rng.uniform(500, 2500);
      // Update-stream loss only: heartbeats still flow, so any probability
      // is failure-detector-safe (the paper's §5 methodology).
      s.events.push_back({FaultKind::kLossStorm, at_ms(from),
                          at_ms(std::min(from + len, dur_ms)), percent(rng, 15, 70)});
    }
  }

  if (opts.enable_link_faults && fault_ceil > fault_floor + 500) {
    Rng rng{derive_stream_seed(seed, kStreamLink)};
    const std::int64_t n = scale_count(rng.uniform(2, 4), opts.intensity);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t from = rng.uniform(fault_floor, fault_ceil);
      const std::int64_t len = rng.uniform(500, 2000);
      const TimePoint a = at_ms(from);
      const TimePoint b = at_ms(std::min(from + len, dur_ms));
      ChaosEvent e;
      e.at = a;
      e.until = b;
      // Loss-like probabilities stay ≤ 0.35: see hardened_config().
      switch (rng.uniform(0, 4)) {
        case 0:
          e.kind = FaultKind::kLinkDegradation;
          e.probability = percent(rng, 5, 35);
          break;
        case 1:
          e.kind = FaultKind::kDuplicationBurst;
          e.probability = percent(rng, 10, 50);
          break;
        case 2:
          e.kind = FaultKind::kReorderBurst;
          e.probability = percent(rng, 20, 60);
          e.extra = millis(rng.uniform(1, 5));
          break;
        case 3:
          e.kind = FaultKind::kBurstLoss;
          e.probability = percent(rng, 1, 4);
          e.burst_length = static_cast<std::uint32_t>(rng.uniform(3, 6));
          break;
        default:
          e.kind = FaultKind::kCorruptionBurst;
          e.probability = percent(rng, 5, 30);
          break;
      }
      s.events.push_back(e);
    }
  }

  if (opts.enable_overload && fault_ceil > fault_floor + 500) {
    Rng rng{derive_stream_seed(seed, kStreamOverload)};
    const std::int64_t n = scale_count(rng.uniform(1, 3), opts.intensity);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t from = rng.uniform(fault_floor, fault_ceil);
      const std::int64_t len = rng.uniform(1000, 3000);
      ChaosEvent e;
      e.at = at_ms(from);
      e.until = at_ms(std::min(from + len, dur_ms));
      switch (rng.uniform(0, 2)) {
        case 0:
          // Steal 30–70% of the primary's CPU.
          e.kind = FaultKind::kCpuSpike;
          e.probability = percent(rng, 30, 70);
          break;
        case 1:
          // Crush the link to 2–10% of its bandwidth: transmission delay
          // balloons 10–50× and the FIFO floor turns it into queueing.
          e.kind = FaultKind::kThrottleBandwidth;
          e.probability = percent(rng, 2, 10);
          break;
        default:
          // Add 20–120 ms of base propagation: RTT inflation far past the
          // fixed ack timeout — only adaptive timeouts ride it out.
          e.kind = FaultKind::kInflateLatency;
          e.extra = millis(rng.uniform(20, 120));
          break;
      }
      s.events.push_back(e);
    }
  }

  // Shard-scoped loss: like a loss storm but confined to one shard's
  // objects (per-object overrides, installed by the harness, which knows
  // the directory placement).  Only drawn when sharding is on, so a
  // shards=1 run never touches this stream.
  if (opts.shards > 1 && fault_ceil > fault_floor + 500) {
    Rng rng{derive_stream_seed(seed, kStreamShard)};
    const std::int64_t n = scale_count(rng.uniform(1, 3), opts.intensity);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t from = rng.uniform(fault_floor, fault_ceil);
      const std::int64_t len = rng.uniform(500, 2000);
      ChaosEvent e;
      e.kind = FaultKind::kShardLossStorm;
      e.at = at_ms(from);
      e.until = at_ms(std::min(from + len, dur_ms));
      e.probability = percent(rng, 15, 70);
      e.shard = static_cast<std::uint32_t>(
          rng.uniform(0, static_cast<std::int64_t>(opts.shards) - 1));
      s.events.push_back(e);
    }
  }

  // Partition scenario: isolate the primary from its successor so both
  // keep running (split brain) — epoch fencing's job to resolve.  It uses
  // the same failover machinery as a crash, so when active it replaces the
  // crash family (independent streams keep every other family's draws
  // unchanged either way).
  const bool partition_active =
      opts.enable_partition && opts.backups >= 2 && dur_ms >= 12000;
  if (partition_active) {
    Rng rng{derive_stream_seed(seed, kStreamPartition)};
    const std::int64_t cut = rng.uniform(dur_ms * 3 / 10, dur_ms * 55 / 100);
    s.events.push_back({FaultKind::kPartitionPrimary, at_ms(cut), at_ms(cut)});
  }

  // Crash–restart scenario: one durable replica dies mid-run and powers
  // back up 0.8–2 s later, rejoining through incremental resync.  Uses the
  // same failover machinery as a plain crash, so when active it replaces
  // the crash family (its own stream keeps every other family's draws
  // unchanged either way).  The `until` field carries the restart instant.
  const bool crash_restart_active = opts.enable_crash_restart && dur_ms >= 12000;
  if (crash_restart_active) {
    Rng rng{derive_stream_seed(seed, kStreamCrashRestart)};
    const bool hit_backup = rng.bernoulli(opts.crash_backup_bias);
    const std::int64_t crash = rng.uniform(dur_ms * 3 / 10, dur_ms * 55 / 100);
    const std::int64_t restart = crash + rng.uniform(800, 2000);
    s.events.push_back(
        {hit_backup ? FaultKind::kCrashRestartBackup : FaultKind::kCrashRestartPrimary,
         at_ms(crash), at_ms(restart)});
  }

  // One crash scenario per run at most: the service supports a single
  // recruited standby, so a second crash would leave nothing to fail to.
  if (opts.enable_crashes && !partition_active && !crash_restart_active && dur_ms >= 12000) {
    Rng rng{derive_stream_seed(seed, kStreamCrash)};
    if (rng.bernoulli(opts.crash_probability)) {
      const bool hit_backup = rng.bernoulli(opts.crash_backup_bias);
      const std::int64_t crash = rng.uniform(dur_ms * 3 / 10, dur_ms * 55 / 100);
      const std::int64_t standby = crash + rng.uniform(1500, 3000);
      s.events.push_back({hit_backup ? FaultKind::kCrashBackup : FaultKind::kCrashPrimary,
                          at_ms(crash), at_ms(crash)});
      s.events.push_back({FaultKind::kAddStandby, at_ms(standby), at_ms(standby)});
    }
  }

  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return s;
}

void apply(const ChaosSchedule& schedule, core::FaultPlan& plan) {
  for (const ChaosEvent& e : schedule.events) {
    switch (e.kind) {
      case FaultKind::kLossStorm:
        plan.loss_storm(e.at, e.until, e.probability);
        break;
      case FaultKind::kLinkDegradation:
        plan.link_degradation(e.at, e.until, e.probability);
        break;
      case FaultKind::kDuplicationBurst:
        plan.duplication_burst(e.at, e.until, e.probability);
        break;
      case FaultKind::kReorderBurst:
        plan.reorder_burst(e.at, e.until, e.probability, e.extra);
        break;
      case FaultKind::kBurstLoss:
        plan.burst_loss(e.at, e.until, e.probability, e.burst_length);
        break;
      case FaultKind::kCorruptionBurst:
        plan.corruption_burst(e.at, e.until, e.probability);
        break;
      case FaultKind::kCrashPrimary:
        plan.crash_primary(e.at);
        break;
      case FaultKind::kCrashBackup:
        plan.crash_backup(e.at);
        break;
      case FaultKind::kAddStandby:
        plan.add_standby(e.at);
        break;
      case FaultKind::kPartitionPrimary:
        plan.partition_primary(e.at);
        break;
      case FaultKind::kCpuSpike:
        plan.cpu_spike(e.at, e.until, e.probability);
        break;
      case FaultKind::kThrottleBandwidth:
        plan.throttle_bandwidth(e.at, e.until, e.probability);
        break;
      case FaultKind::kInflateLatency:
        plan.inflate_latency(e.at, e.until, e.extra);
        break;
      case FaultKind::kShardLossStorm:
        // Applied by the harness (apply_shard_faults): the per-object loss
        // overrides need the directory placement and the admitted set,
        // neither of which the schedule layer knows.
        break;
      case FaultKind::kCrashRestartPrimary:
        plan.crash_restart_primary(e.at, e.until);
        break;
      case FaultKind::kCrashRestartBackup:
        plan.crash_restart_backup(e.at, e.until);
        break;
    }
  }
}

std::vector<FaultEpoch> declared_epochs(const ChaosSchedule& schedule,
                                        const ChaosOptions& opts) {
  std::vector<FaultEpoch> epochs;
  // A crash epoch stays open until recruitment has had its grace: with no
  // backup alive (or no primary, mid-failover) the distance metric cannot
  // recover, so the whole crash→standby→catch-up arc is one epoch.
  TimePoint standby_at = TimePoint::max();
  for (const ChaosEvent& e : schedule.events) {
    if (e.kind == FaultKind::kAddStandby) standby_at = e.at;
  }
  for (const ChaosEvent& e : schedule.events) {
    switch (e.kind) {
      case FaultKind::kCrashPrimary:
      case FaultKind::kCrashBackup: {
        const TimePoint recovered =
            standby_at == TimePoint::max() ? e.at : standby_at;
        epochs.push_back({e.at, recovered + opts.failover_grace, e.kind});
        break;
      }
      case FaultKind::kAddStandby:
        epochs.push_back({e.at, e.at + opts.failover_grace, e.kind});
        break;
      case FaultKind::kPartitionPrimary:
        // Detection + promotion + recruitment + depose notice + the new
        // primary's version counter overtaking the survivor's divergent
        // suffix: double the failover grace covers the whole arc.
        epochs.push_back({e.at, e.at + opts.failover_grace + opts.failover_grace, e.kind});
        break;
      case FaultKind::kCrashRestartPrimary:
      case FaultKind::kCrashRestartBackup:
        // One epoch spans the whole crash → restart → resync catch-up arc
        // (`until` is the restart instant).
        epochs.push_back({e.at, e.until + opts.failover_grace, e.kind});
        break;
      default:
        epochs.push_back({e.at, e.until + opts.settle, e.kind});
        break;
    }
  }
  return epochs;
}

Workload generate_workload(std::uint64_t seed, const ChaosOptions& opts) {
  Rng rng{derive_stream_seed(seed, kStreamWorkload)};
  static constexpr std::int64_t kPeriodsMs[] = {10, 20, 25, 50};
  static constexpr std::int64_t kWindowsMs[] = {80, 160, 240, 320};
  static constexpr std::uint32_t kSizes[] = {32, 64, 128, 256, 512, 1024};

  Workload w;
  for (std::size_t i = 0; i < opts.objects; ++i) {
    core::ObjectSpec spec;
    spec.id = static_cast<core::ObjectId>(i + 1);
    spec.name = "chaos-obj-" + std::to_string(spec.id);
    const std::int64_t p = kPeriodsMs[rng.uniform(0, 3)];
    spec.client_period = millis(p);
    spec.client_exec = micros(200);
    spec.update_exec = micros(500);
    spec.size_bytes = kSizes[rng.uniform(0, 5)];
    // δ_P must admit the write period; the window rides on top of it.
    spec.delta_primary = millis(p + 10);
    spec.delta_backup = spec.delta_primary + millis(kWindowsMs[rng.uniform(0, 3)]);
    w.objects.push_back(spec);
  }
  if (opts.objects >= 2 && rng.bernoulli(0.5)) {
    w.constraints.push_back({1, 2, millis(rng.uniform(150, 400))});
  }
  return w;
}

std::string render_reproducer(const ChaosSchedule& schedule, const ChaosOptions& opts) {
  std::string out;
  char line[1024];
  const auto ms = [](TimePoint t) { return t.nanos() / 1'000'000; };

  std::snprintf(line, sizeof line,
                "// ---- chaos reproducer: seed %llu ----\n"
                "// auto at_ms = [](std::int64_t m) { return TimePoint::zero() + millis(m); };\n"
                "chaos::ChaosOptions opts;  // defaults as of this build\n"
                "core::ServiceParams params;\n"
                "params.seed = 0x%llxULL;  // derive_stream_seed(seed, kStreamService)\n"
                "params.link = opts.link;\n"
                "params.config = opts.config;\n"
                "params.backup_count = %zu;\n"
                "params.durable = %s;\n"
                "core::RtpbService service(params);\n"
                "service.start();\n"
                "auto workload = chaos::generate_workload(%lluULL, opts);\n"
                "for (const auto& spec : workload.objects) service.register_object(spec);\n"
                "for (const auto& c : workload.constraints) service.add_constraint(c);\n"
                "core::FaultPlan plan(service);\n",
                static_cast<unsigned long long>(schedule.seed),
                static_cast<unsigned long long>(schedule.service_seed), opts.backups,
                opts.enable_crash_restart ? "true" : "false",
                static_cast<unsigned long long>(schedule.seed));
  out += line;

  for (const ChaosEvent& e : schedule.events) {
    switch (e.kind) {
      case FaultKind::kLossStorm:
        std::snprintf(line, sizeof line, "plan.loss_storm(at_ms(%lld), at_ms(%lld), %.2f);\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      e.probability);
        break;
      case FaultKind::kLinkDegradation:
        std::snprintf(line, sizeof line,
                      "plan.link_degradation(at_ms(%lld), at_ms(%lld), %.2f);\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      e.probability);
        break;
      case FaultKind::kDuplicationBurst:
        std::snprintf(line, sizeof line,
                      "plan.duplication_burst(at_ms(%lld), at_ms(%lld), %.2f);\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      e.probability);
        break;
      case FaultKind::kReorderBurst:
        std::snprintf(line, sizeof line,
                      "plan.reorder_burst(at_ms(%lld), at_ms(%lld), %.2f, millis(%lld));\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      e.probability, static_cast<long long>(e.extra.nanos() / 1'000'000));
        break;
      case FaultKind::kBurstLoss:
        std::snprintf(line, sizeof line,
                      "plan.burst_loss(at_ms(%lld), at_ms(%lld), %.2f, %u);\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      e.probability, e.burst_length);
        break;
      case FaultKind::kCorruptionBurst:
        std::snprintf(line, sizeof line,
                      "plan.corruption_burst(at_ms(%lld), at_ms(%lld), %.2f);\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      e.probability);
        break;
      case FaultKind::kCrashPrimary:
        std::snprintf(line, sizeof line, "plan.crash_primary(at_ms(%lld));\n",
                      static_cast<long long>(ms(e.at)));
        break;
      case FaultKind::kCrashBackup:
        std::snprintf(line, sizeof line, "plan.crash_backup(at_ms(%lld));\n",
                      static_cast<long long>(ms(e.at)));
        break;
      case FaultKind::kAddStandby:
        std::snprintf(line, sizeof line, "plan.add_standby(at_ms(%lld));\n",
                      static_cast<long long>(ms(e.at)));
        break;
      case FaultKind::kPartitionPrimary:
        std::snprintf(line, sizeof line, "plan.partition_primary(at_ms(%lld));\n",
                      static_cast<long long>(ms(e.at)));
        break;
      case FaultKind::kCpuSpike:
        std::snprintf(line, sizeof line, "plan.cpu_spike(at_ms(%lld), at_ms(%lld), %.2f);\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      e.probability);
        break;
      case FaultKind::kThrottleBandwidth:
        std::snprintf(line, sizeof line,
                      "plan.throttle_bandwidth(at_ms(%lld), at_ms(%lld), %.2f);\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      e.probability);
        break;
      case FaultKind::kInflateLatency:
        std::snprintf(line, sizeof line,
                      "plan.inflate_latency(at_ms(%lld), at_ms(%lld), millis(%lld));\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)),
                      static_cast<long long>(e.extra.nanos() / 1'000'000));
        break;
      case FaultKind::kShardLossStorm:
        std::snprintf(line, sizeof line,
                      "// shard %u loss storm [%lld, %lld] ms p=%.2f — set opts.shards and\n"
                      "// re-run through chaos::run_seed (per-object overrides).\n",
                      e.shard, static_cast<long long>(ms(e.at)),
                      static_cast<long long>(ms(e.until)), e.probability);
        break;
      case FaultKind::kCrashRestartPrimary:
        std::snprintf(line, sizeof line,
                      "plan.crash_restart_primary(at_ms(%lld), at_ms(%lld));\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)));
        break;
      case FaultKind::kCrashRestartBackup:
        std::snprintf(line, sizeof line,
                      "plan.crash_restart_backup(at_ms(%lld), at_ms(%lld));\n",
                      static_cast<long long>(ms(e.at)), static_cast<long long>(ms(e.until)));
        break;
    }
    out += line;
  }

  std::snprintf(line, sizeof line,
                "plan.arm();\n"
                "service.run_for(millis(%lld));\n"
                "service.finish();\n",
                static_cast<long long>(opts.duration.nanos() / 1'000'000));
  out += line;
  return out;
}

}  // namespace rtpb::chaos
