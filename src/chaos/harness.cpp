#include "chaos/harness.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>

#include "core/faults.hpp"
#include "core/health.hpp"
#include "shard/directory.hpp"
#include "telemetry/export.hpp"
#include "util/log.hpp"

namespace rtpb::chaos {

namespace {

/// Translate kShardLossStorm events into scripted per-object loss
/// overrides on the acting primary.  Lives here, not in apply(): the
/// override set needs the directory placement and the admitted list.
/// Shard membership is resolved eagerly so the scheduled actions carry
/// plain id lists.
void apply_shard_faults(const ChaosSchedule& schedule, const ChaosOptions& opts,
                        core::RtpbService& service,
                        const std::vector<core::ObjectId>& admitted, core::FaultPlan& plan) {
  if (opts.shards <= 1) return;
  const shard::ShardDirectory directory(static_cast<shard::ShardId>(opts.shards), 1);
  for (const ChaosEvent& e : schedule.events) {
    if (e.kind != FaultKind::kShardLossStorm) continue;
    std::vector<core::ObjectId> ids;
    for (core::ObjectId id : admitted) {
      if (directory.shard_of(id) == e.shard) ids.push_back(id);
    }
    if (ids.empty()) continue;
    char label[96];
    std::snprintf(label, sizeof label, "shard-loss-storm(shard=%u,p=%.2f)", e.shard,
                  e.probability);
    const double p = e.probability;
    plan.at(e.at, label, [&service, ids, p] {
      for (core::ObjectId id : ids) service.acting_primary().set_object_loss_probability(id, p);
    });
    std::snprintf(label, sizeof label, "shard-loss-storm-end(shard=%u)", e.shard);
    plan.at(e.until, label, [&service, ids] {
      for (core::ObjectId id : ids) service.acting_primary().clear_object_loss_probability(id);
    });
  }
}

/// Translate torn_tail_bytes into a tear-wal-tail sabotage action halfway
/// through each crash-restart outage (the replica is down, its WAL is
/// quiescent).  Lives here, not in apply(): the replica index follows the
/// service's for_each_replica order, which the schedule layer cannot know.
void apply_torn_tail_sabotage(const ChaosSchedule& schedule, const ChaosOptions& opts,
                              core::FaultPlan& plan) {
  if (opts.torn_tail_bytes == 0) return;
  for (const ChaosEvent& e : schedule.events) {
    if (e.kind != FaultKind::kCrashRestartPrimary && e.kind != FaultKind::kCrashRestartBackup)
      continue;
    const std::size_t replica = e.kind == FaultKind::kCrashRestartPrimary ? 0 : 1;
    plan.tear_wal_tail(e.at + (e.until - e.at) / 2, replica, opts.torn_tail_bytes);
  }
}

}  // namespace

std::string SeedReport::summary() const {
  char line[192];
  std::snprintf(line, sizeof line,
                "seed %6llu  %s  digest %016llx  admitted %zu/%zu  writes %llu  "
                "applied %llu  faults %zu  violations %llu",
                static_cast<unsigned long long>(seed), ok() ? "ok  " : "FAIL",
                static_cast<unsigned long long>(trace_digest), objects_admitted,
                objects_offered, static_cast<unsigned long long>(client_writes),
                static_cast<unsigned long long>(updates_applied), fired.size(),
                static_cast<unsigned long long>(violation_count));
  return line;
}

SeedReport run_seed(std::uint64_t seed, const ChaosOptions& opts) {
  const ChaosSchedule schedule = generate_schedule(seed, opts);

  core::ServiceParams params;
  params.seed = schedule.service_seed;
  params.link = opts.link;
  params.config = opts.config;
  params.backup_count = opts.backups;
  // Durable replicas are required for restart; WAL appends are synchronous
  // and draw no randomness, so this alone never perturbs digests.
  params.durable = opts.enable_crash_restart;

  core::RtpbService service(params);
  service.simulator().trace().enable();
  telemetry::Hub& hub = service.simulator().telemetry();
  if (opts.telemetry) {
    hub.enable();
    hub.slo().enable();
  }
  if (opts.flight_recorder || !opts.postmortem_path.empty()) {
    hub.flight_recorder().enable();
    if (!opts.postmortem_path.empty()) {
      hub.flight_recorder().set_dump_path(opts.postmortem_path);
    }
  }
  service.start();

  const Workload workload = generate_workload(seed, opts);
  std::vector<core::ObjectId> admitted;
  for (const core::ObjectSpec& spec : workload.objects) {
    if (service.register_object(spec).ok()) admitted.push_back(spec.id);
  }
  for (const core::InterObjectConstraint& c : workload.constraints) {
    service.add_constraint(c);  // rejection is a legal outcome
  }

  core::FaultPlan plan(service);
  apply(schedule, plan);
  apply_shard_faults(schedule, opts, service, admitted, plan);
  apply_torn_tail_sabotage(schedule, opts, plan);
  plan.arm();

  OracleMonitor monitor(service, admitted, declared_epochs(schedule, opts));
  monitor.start();

  std::ofstream health_out;
  std::unique_ptr<core::HealthFeed> health;
  if (!opts.health_jsonl_path.empty()) {
    health_out.open(opts.health_jsonl_path);
    if (health_out) {
      health = std::make_unique<core::HealthFeed>(service, health_out, admitted,
                                                  opts.health_period);
      health->start();
    } else {
      RTPB_WARN("chaos", "cannot open %s for health feed", opts.health_jsonl_path.c_str());
    }
  }

  service.run_for(opts.duration);
  if (health != nullptr) health->stop();
  service.finish();

  // A clean run never tripped the dump: ship the full ring anyway so the
  // artifact path always yields something inspectable.
  telemetry::FlightRecorder& recorder = hub.flight_recorder();
  if (recorder.enabled() && !opts.postmortem_path.empty() && !recorder.dumped()) {
    recorder.trigger_dump("end-of-run", service.simulator().now());
  }

  SeedReport report;
  report.seed = seed;
  report.trace_digest = service.simulator().trace().digest();
  report.trace_events = service.simulator().trace().recorded();
  report.sim_events = service.simulator().fired_events();
  report.violations = monitor.violations();
  report.violation_count = monitor.violation_count();
  report.oracle_checks = monitor.checks();
  report.fired = plan.fired();
  report.objects_offered = workload.objects.size();
  report.objects_admitted = admitted.size();
  report.client_writes =
      service.client().writes_issued() + service.backup_client().writes_issued();
  service.for_each_replica([&report](const core::ReplicaServer& r) {
    report.updates_applied += r.updates_applied();
    report.epoch_rejections += r.epoch_rejections();
    report.cross_epoch_applies += r.cross_epoch_applies();
    report.updates_shed += r.updates_shed();
    report.qos_downgrades += r.qos_downgrades_sent();
    report.qos_restores += r.qos_restores_sent();
    report.transfer_give_ups += r.transfer_give_ups();
    report.recoveries += r.recoveries();
    report.recovery_lost += r.recovery_lost_updates();
    report.resync_deltas += r.resync_deltas_sent();
    report.resync_fulls += r.resync_fulls_sent();
  });
  report.avg_max_distance_ms = service.metrics().average_max_distance_ms();
  report.total_inconsistency_ms = service.metrics().total_inconsistency().millis();
  report.inconsistency_intervals = service.metrics().inconsistency_intervals();
  if (!report.ok()) report.reproducer = render_reproducer(schedule, opts);

  report.flight_events = recorder.recorded();
  report.postmortem_written = recorder.dumped();
  report.postmortem_reason = recorder.dump_reason();
  if (health != nullptr) report.health_snapshots = health->snapshots();

  if (opts.telemetry) {
    report.spans_started = hub.spans_started();
    report.spans_violated = hub.spans_violated();
    report.metrics_json = hub.registry().to_json();
    if (!opts.metrics_json_path.empty()) {
      std::ofstream out(opts.metrics_json_path);
      if (out) {
        out << report.metrics_json << "\n";
      } else {
        RTPB_WARN("chaos", "cannot open %s for metrics export", opts.metrics_json_path.c_str());
      }
    }
    // The service lives only inside this call, so exports happen here too.
    if (!opts.trace_json_path.empty()) {
      std::ofstream out(opts.trace_json_path);
      if (out) {
        telemetry::write_chrome_trace(hub, out);
      } else {
        RTPB_WARN("chaos", "cannot open %s for trace export", opts.trace_json_path.c_str());
      }
    }
    if (!opts.trace_jsonl_path.empty()) {
      std::ofstream out(opts.trace_jsonl_path);
      if (out) {
        telemetry::write_jsonl(hub, out);
      } else {
        RTPB_WARN("chaos", "cannot open %s for trace export", opts.trace_jsonl_path.c_str());
      }
    }
  }
  return report;
}

SweepResult run_sweep(std::uint64_t first_seed, std::size_t count, const ChaosOptions& opts,
                      std::ostream* progress) {
  SweepResult result;
  for (std::size_t i = 0; i < count; ++i) {
    SeedReport report = run_seed(first_seed + i, opts);
    ++result.seeds_run;
    result.total_checks += report.oracle_checks;
    if (progress != nullptr) *progress << report.summary() << "\n";
    if (!report.ok()) {
      if (progress != nullptr) {
        for (const OracleViolation& v : report.violations) {
          *progress << "  [" << v.at.to_string() << "] " << v.oracle << ": " << v.detail
                    << "\n";
        }
        *progress << report.reproducer;
      }
      result.failures.push_back(std::move(report));
    }
  }
  return result;
}

}  // namespace rtpb::chaos
