// The chaos harness proper: run one seed (or a sweep of seeds) through a
// full RtpbService with a generated fault schedule, continuously checked
// by the invariant oracles, and report a bit-reproducible trace digest.
//
// FoundationDB-style deterministic simulation testing: the seed is the
// whole experiment.  A failing seed prints a ready-to-paste FaultPlan
// reproducer; re-running the seed replays the identical trajectory, byte
// for byte, which the determinism regression test asserts via the digest.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "chaos/oracles.hpp"
#include "chaos/schedule.hpp"

namespace rtpb::chaos {

/// Everything one seed produced.  Two runs of the same seed must compare
/// equal on every field (the determinism regression).
struct SeedReport {
  std::uint64_t seed = 0;
  std::uint64_t trace_digest = 0;   ///< FNV-1a over the full event trace
  std::uint64_t trace_events = 0;   ///< events folded into the digest
  std::uint64_t sim_events = 0;     ///< simulator events fired

  std::vector<OracleViolation> violations;  ///< capped; count below is not
  std::uint64_t violation_count = 0;
  std::uint64_t oracle_checks = 0;
  std::vector<std::string> fired;  ///< fault-plan actions that fired, in order

  std::size_t objects_offered = 0;
  std::size_t objects_admitted = 0;
  std::uint64_t client_writes = 0;
  std::uint64_t updates_applied = 0;      ///< summed over replicas
  std::uint64_t epoch_rejections = 0;     ///< stale-epoch messages fenced, all replicas
  std::uint64_t cross_epoch_applies = 0;  ///< stale-epoch updates applied (want 0)
  double avg_max_distance_ms = 0.0;
  double total_inconsistency_ms = 0.0;
  std::uint64_t inconsistency_intervals = 0;

  // Graceful-degradation activity, summed over replicas.
  std::uint64_t updates_shed = 0;        ///< staged updates dropped by slack shedding
  std::uint64_t qos_downgrades = 0;      ///< ConstraintDowngrade notices sent
  std::uint64_t qos_restores = 0;        ///< ConstraintRestore notices sent
  std::uint64_t transfer_give_ups = 0;   ///< state-transfer retry caps hit

  // Durability / crash-recovery activity, summed over replicas (zero
  // unless ChaosOptions::enable_crash_restart).
  std::uint64_t recoveries = 0;            ///< successful crash-restarts
  std::uint64_t recovery_lost = 0;         ///< acked updates lost (want 0)
  std::uint64_t resync_deltas = 0;         ///< incremental rejoins served
  std::uint64_t resync_fulls = 0;          ///< full-transfer fallbacks

  // Telemetry (zero / empty unless ChaosOptions::telemetry).
  std::uint64_t spans_started = 0;
  std::uint64_t spans_violated = 0;
  std::string metrics_json;  ///< registry snapshot

  // Flight recorder / health feed (zero / empty unless enabled).
  std::uint64_t flight_events = 0;     ///< records captured by the ring
  bool postmortem_written = false;     ///< a post-mortem artifact was dumped
  std::string postmortem_reason;       ///< trigger that wrote it
  std::uint64_t health_snapshots = 0;  ///< health JSONL lines emitted

  /// Ready-to-paste FaultPlan reproducer (filled when violations > 0).
  std::string reproducer;

  [[nodiscard]] bool ok() const { return violation_count == 0; }
  /// One-line summary for sweep output.
  [[nodiscard]] std::string summary() const;
};

/// Run a single chaos seed to completion.  Deterministic.
[[nodiscard]] SeedReport run_seed(std::uint64_t seed, const ChaosOptions& opts);

struct SweepResult {
  std::size_t seeds_run = 0;
  std::vector<SeedReport> failures;  ///< reports of seeds with violations
  std::uint64_t total_checks = 0;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run seeds [first_seed, first_seed + count).  If `progress` is non-null,
/// prints one line per seed and a reproducer for every failure.
[[nodiscard]] SweepResult run_sweep(std::uint64_t first_seed, std::size_t count,
                                    const ChaosOptions& opts,
                                    std::ostream* progress = nullptr);

}  // namespace rtpb::chaos
