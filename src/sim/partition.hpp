// Partition seam: drive a Simulator externally, window by window.
//
// A conservative parallel discrete-event driver (src/psim/) owns several
// simulators — one per shard partition — and advances each to a common
// horizon before any cross-partition traffic is exchanged.  This wrapper
// is that external-driving contract in one place: horizons are monotone,
// every event at or before the horizon fires, and the clock lands exactly
// on the horizon afterwards, so all partitions agree on "now" at each
// barrier.  Windowed driving is digest-transparent: advance_to(a) then
// advance_to(b) fires the identical event sequence as one run_until(b),
// because run_until clamps the clock without scheduling anything.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace rtpb::sim {

class Partition {
 public:
  explicit Partition(Simulator& sim) : sim_(sim) {}

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  /// Run every event with timestamp <= horizon; the clock lands exactly
  /// on `horizon`.  Horizons must be monotone across calls.
  void advance_to(TimePoint horizon) {
    RTPB_EXPECTS(horizon >= sim_.now());
    sim_.run_until(horizon);
    ++windows_;
  }

  /// True when no queued entry could fire inside (now, horizon] — the
  /// window would be pure clock advancement.  Conservative: a cancelled
  /// entry at the queue head may report a busy window as idle-looking
  /// work, never the reverse.
  [[nodiscard]] bool idle_until(TimePoint horizon) const {
    return sim_.next_event_time() > horizon;
  }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Simulator& sim() const { return sim_; }
  /// Lookahead windows this partition has been advanced through.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

 private:
  Simulator& sim_;
  std::uint64_t windows_ = 0;
};

}  // namespace rtpb::sim
