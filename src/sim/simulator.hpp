// Discrete-event simulation kernel.
//
// The simulator owns the virtual clock and an event queue ordered by
// (time, sequence number): ties in time fire in scheduling order, which
// makes runs fully deterministic.  Every higher layer — the CPU scheduler,
// the network links, the RTPB protocol — advances exclusively by
// scheduling events here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/choice.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rtpb::sim {

class Simulator;

/// Cancellation handle for a scheduled event.  Default-constructed handles
/// are inert.  Cancelling an already-fired or already-cancelled event is a
/// harmless no-op — callers routinely cancel defensively during teardown.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing.  Returns true if it was still pending.
  bool cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule fn at absolute virtual time `at` (must not be in the past).
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);
  /// Same, with an EventTag describing the event for the choice policy's
  /// tie-breaking (untagged events are treated as dependent on everything).
  EventHandle schedule_at(TimePoint at, EventTag tag, std::function<void()> fn);
  /// Schedule fn after `delay` (must be non-negative).
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Run until the queue drains or the clock passes `deadline`.
  /// Events exactly at `deadline` do fire — with or without a choice
  /// policy installed (the boundary semantics are pinned by tests; a
  /// policy may reorder same-instant events at the deadline but can
  /// neither fire an event beyond it nor skip one at it).
  void run_until(TimePoint deadline);
  /// Run until the queue drains (or stop() is called).
  void run();
  /// Fire the single next event; returns false if the queue is empty.
  bool step();
  /// Make run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Lower bound on the next live event's firing time: the earliest
  /// queued entry's timestamp, or TimePoint::max() when the queue is
  /// empty.  A cancelled entry at the head makes this conservative (the
  /// next live event may be later); callers use it as an idle check,
  /// never as an exact schedule.
  [[nodiscard]] TimePoint next_event_time() const {
    return queue_.empty() ? TimePoint::max() : queue_.top().at;
  }

  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t fired_events() const { return fired_events_; }

  /// Root RNG for the run; components should fork() their own streams.
  Rng& rng() { return rng_; }

  /// Install (or clear, with nullptr) the choice strategy.  Not owned; the
  /// policy must outlive its installation.  With no policy the simulator
  /// is byte-identical to the pre-seam behaviour.
  void set_choice_policy(ChoicePolicy* policy) { policy_ = policy; }
  [[nodiscard]] ChoicePolicy* choice_policy() const { return policy_; }

  /// Route a boolean fault decision through the installed policy, or fall
  /// through to the same seeded Bernoulli draw the caller used before the
  /// seam existed (`rng` is the *caller's* stream, so digests are stable).
  bool decide_fault(const ChoiceContext& ctx, Rng& rng) {
    return policy_ != nullptr ? policy_->decide(ctx, rng) : rng.bernoulli(ctx.probability);
  }

  /// Execution tracing; off by default.  Components record via
  /// `if (sim.trace().enabled()) sim.trace().record(sim.now(), ...)`.
  TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }

  /// Telemetry runtime (metrics registry + causal update spans); disabled
  /// by default.  Components guard with `if (telemetry().enabled())` —
  /// same idiom as trace().
  telemetry::Hub& telemetry() { return hub_; }
  [[nodiscard]] const telemetry::Hub& telemetry() const { return hub_; }

 private:
  struct QueueEntry {
    TimePoint at;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::State> state;
    EventTag tag;
    bool operator>(const QueueEntry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// step() with a policy installed: gather the tie set at the earliest
  /// instant and let the policy pick which member fires.
  bool step_with_policy();

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_events_ = 0;
  std::size_t live_events_ = 0;
  bool stopped_ = false;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  ChoicePolicy* policy_ = nullptr;
  Rng rng_;
  TraceRecorder trace_;
  telemetry::Hub hub_;
};

/// Self-rescheduling periodic timer.  The callback runs once per period
/// starting at `first`; stop() halts it.  Used for heartbeats and for
/// jobs whose dispatch is *not* mediated by the CPU scheduler.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, std::function<void()> fn,
                EventTag tag = {});
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start_at(TimePoint first);
  void start() { start_at(sim_.now() + period_); }
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  /// Change the period.  If an event is armed, it is re-armed so the new
  /// period takes effect IMMEDIATELY: the next firing moves to
  /// `base + p`, where `base` is the instant the current cycle started
  /// (last firing, or start time), clamped to now.  Without the re-arm a
  /// QoS renegotiation that loosens a heartbeat would still fire one
  /// beat at the old cadence — and one that tightens it would wait out
  /// the old, longer period before speeding up.
  void set_period(Duration p);
  [[nodiscard]] Duration period() const { return period_; }
  /// The instant the armed event will fire (TimePoint::max() if idle).
  [[nodiscard]] TimePoint next_fire() const {
    return pending_.pending() ? next_fire_ : TimePoint::max();
  }

 private:
  void arm(TimePoint at);
  Simulator& sim_;
  Duration period_;
  std::function<void()> fn_;
  EventTag tag_;
  EventHandle pending_;
  TimePoint next_fire_{};
  TimePoint cycle_base_{};  ///< instant the current cycle started
  bool running_ = false;
};

}  // namespace rtpb::sim
