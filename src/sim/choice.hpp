// ChoicePoint seam: every source of nondeterminism in the simulation —
// which of several same-instant events fires first, whether a frame is
// dropped/reordered/duplicated, whether a scripted fault candidate
// actually fires — is routed through a pluggable ChoicePolicy.
//
// With no policy installed the simulator behaves exactly as before: ties
// fire in scheduling order and fault decisions fall through to the same
// seeded Bernoulli draw on the same RNG stream, so chaos trace digests
// are unchanged.  The bounded explorer (src/explore/) installs a policy
// that records each decision as a choice point and systematically
// enumerates the alternatives.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace rtpb::sim {

enum class ChoiceKind : std::uint8_t {
  kEventOrder,      ///< which of several same-instant events fires first
  kFrameLoss,       ///< Bernoulli per-frame drop on a directed link
  kFrameBurst,      ///< open a correlated-loss burst on this frame
  kFrameCorrupt,    ///< flip one bit of this frame
  kFrameReorder,    ///< exempt this frame from FIFO delivery
  kFrameDuplicate,  ///< deliver an extra copy of this frame
  kFault,           ///< scripted fault candidate (crash / partition / …)
};

/// One boolean decision offered to the policy.  `probability` is what the
/// default (RNG) strategy feeds to bernoulli(); `a`/`b` identify the
/// directed link for frame fates; `label` names the candidate for kFault.
struct ChoiceContext {
  ChoiceKind kind{};
  double probability = 0.0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  const char* label = nullptr;
};

inline constexpr std::uint8_t kTagNone = 0;
/// A network frame delivery: `node` is the receiving host, `peer` the
/// sender (two deliveries commute iff their receivers differ; two on the
/// same directed link must keep FIFO order).
inline constexpr std::uint8_t kTagNetDelivery = 1;
/// A passive observer (the oracle monitor's sampling tick): reads state,
/// never mutates it, so its order against same-instant events is
/// irrelevant and never explored.
inline constexpr std::uint8_t kTagObserver = 2;

struct EventTag {
  std::uint8_t kind = kTagNone;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
};

class ChoicePolicy {
 public:
  virtual ~ChoicePolicy() = default;

  /// Decide a boolean choice.  The default strategy is
  /// `rng.bernoulli(ctx.probability)`; implementations that do not branch
  /// on a given kind should fall back to exactly that.
  virtual bool decide(const ChoiceContext& ctx, Rng& rng) = 0;

  /// Pick which of several events tied at the same virtual instant fires
  /// first.  `tags[i]` describes candidate i; candidates are in scheduling
  /// order, so returning 0 reproduces the default FIFO tie-break.  An
  /// out-of-range return is treated as 0.
  virtual std::size_t pick_event(const std::vector<EventTag>& tags) {
    (void)tags;
    return 0;
  }
};

}  // namespace rtpb::sim
