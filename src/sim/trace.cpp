#include "sim/trace.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace rtpb::sim {

const char* trace_category_name(TraceCategory c) {
  switch (c) {
    case TraceCategory::kCpu: return "cpu";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kProtocol: return "proto";
    case TraceCategory::kService: return "service";
    case TraceCategory::kUser: return "user";
  }
  return "?";
}

void TraceRecorder::enable(std::size_t capacity) {
  RTPB_EXPECTS(capacity > 0);
  enabled_ = true;
  capacity_ = capacity;
}

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) h = fnv1a_byte(h, static_cast<std::uint8_t>(v >> (i * 8)));
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  return fnv1a_byte(h, 0);  // terminator keeps ("ab","c") != ("a","bc")
}
}  // namespace

void TraceRecorder::record(TimePoint at, TraceCategory category, std::string label,
                           std::string detail) {
  if (!enabled_) return;
  digest_ = fnv1a_u64(digest_, static_cast<std::uint64_t>(at.nanos()));
  digest_ = fnv1a_byte(digest_, static_cast<std::uint8_t>(category));
  digest_ = fnv1a_str(digest_, label);
  digest_ = fnv1a_str(digest_, detail);
  ++recorded_;
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(TraceEvent{at, category, std::move(label), std::move(detail)});
}

void TraceRecorder::clear() {
  events_.clear();
  dropped_ = 0;
  digest_ = kFnvOffset;
  recorded_ = 0;
}

std::vector<TraceEvent> TraceRecorder::with_label(const std::string& label) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.label == label) out.push_back(e);
  }
  return out;
}

std::string TraceRecorder::render() const {
  std::string out;
  char line[256];
  for (const auto& e : events_) {
    std::snprintf(line, sizeof line, "%12.3fms  %-8s %-20s %s\n", e.at.millis(),
                  trace_category_name(e.category), e.label.c_str(), e.detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace rtpb::sim
