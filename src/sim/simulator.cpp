#include "sim/simulator.hpp"

#include "util/log.hpp"

namespace rtpb::sim {

bool EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  state_->fn = nullptr;  // release captured resources eagerly
  return true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  Logger::instance().set_clock([this] { return now_; });
  hub_.set_clock([this] { return now_; });
}

Simulator::~Simulator() { Logger::instance().clear_clock(); }

EventHandle Simulator::schedule_at(TimePoint at, std::function<void()> fn) {
  return schedule_at(at, EventTag{}, std::move(fn));
}

EventHandle Simulator::schedule_at(TimePoint at, EventTag tag, std::function<void()> fn) {
  RTPB_EXPECTS(at >= now_);
  RTPB_EXPECTS(fn != nullptr);
  auto state = std::make_shared<EventHandle::State>();
  state->fn = std::move(fn);
  queue_.push(QueueEntry{at, next_seq_++, state, tag});
  ++live_events_;
  return EventHandle{std::move(state)};
}

EventHandle Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  RTPB_EXPECTS(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (policy_ != nullptr) return step_with_policy();
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    --live_events_;
    if (entry.state->cancelled) continue;
    RTPB_ASSERT(entry.at >= now_);
    now_ = entry.at;
    entry.state->fired = true;
    ++fired_events_;
    auto fn = std::move(entry.state->fn);
    fn();
    return true;
  }
  return false;
}

bool Simulator::step_with_policy() {
  // Skim cancelled entries, then collect every live event tied at the
  // earliest instant and let the policy pick which fires.  The rest go
  // back with their original sequence numbers, so a policy that always
  // returns 0 reproduces the FIFO tie-break exactly.
  while (!queue_.empty() && queue_.top().state->cancelled) {
    queue_.pop();
    --live_events_;
  }
  if (queue_.empty()) return false;
  const TimePoint at = queue_.top().at;
  std::vector<QueueEntry> ready;
  while (!queue_.empty() && queue_.top().at == at) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    if (entry.state->cancelled) {
      --live_events_;
      continue;
    }
    ready.push_back(std::move(entry));
  }
  std::size_t pick = 0;
  if (ready.size() > 1) {
    std::vector<EventTag> tags;
    tags.reserve(ready.size());
    for (const QueueEntry& e : ready) tags.push_back(e.tag);
    pick = policy_->pick_event(tags);
    if (pick >= ready.size()) pick = 0;
  }
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (i != pick) queue_.push(ready[i]);
  }
  QueueEntry chosen = std::move(ready[pick]);
  --live_events_;
  RTPB_ASSERT(chosen.at >= now_);
  now_ = chosen.at;
  chosen.state->fired = true;
  ++fired_events_;
  auto fn = std::move(chosen.state->fn);
  fn();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Drop cancelled entries without advancing the clock.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      --live_events_;
      continue;
    }
    if (queue_.top().at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period, std::function<void()> fn,
                             EventTag tag)
    : sim_(sim), period_(period), fn_(std::move(fn)), tag_(tag) {
  RTPB_EXPECTS(period_ > Duration::zero());
  RTPB_EXPECTS(fn_ != nullptr);
}

void PeriodicTimer::start_at(TimePoint first) {
  stop();
  running_ = true;
  // The first cycle starts NOW, whatever offset `first` was armed at —
  // set_period() re-anchors on this instant, not on `first - period`.
  cycle_base_ = sim_.now();
  arm(first);
}

void PeriodicTimer::stop() {
  pending_.cancel();
  running_ = false;
}

void PeriodicTimer::set_period(Duration p) {
  RTPB_EXPECTS(p > Duration::zero());
  if (!running_ || !pending_.pending()) {
    period_ = p;
    return;
  }
  // Re-anchor the armed event on the cycle's recorded start instant (the
  // last firing, or the start_at() call), so the new period governs the
  // very next firing.  Deriving the base as next_fire_ - period_ instead
  // would fabricate it for a timer whose first fire is not one period
  // after the start.  Tightening into the past clamps to now (fires as
  // soon as the simulator reaches this instant's remaining events).
  period_ = p;
  pending_.cancel();
  TimePoint next = cycle_base_ + p;
  if (next < sim_.now()) next = sim_.now();
  arm(next);
}

void PeriodicTimer::arm(TimePoint at) {
  next_fire_ = at;
  pending_ = sim_.schedule_at(at, tag_, [this, at] {
    if (!running_) return;
    // This firing opens the next cycle; re-arm first so fn_ may call
    // stop()/set_period() and win.
    cycle_base_ = at;
    arm(at + period_);
    fn_();
  });
}

}  // namespace rtpb::sim
