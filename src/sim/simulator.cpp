#include "sim/simulator.hpp"

#include "util/log.hpp"

namespace rtpb::sim {

bool EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  state_->fn = nullptr;  // release captured resources eagerly
  return true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  Logger::instance().set_clock([this] { return now_; });
  hub_.set_clock([this] { return now_; });
}

Simulator::~Simulator() { Logger::instance().clear_clock(); }

EventHandle Simulator::schedule_at(TimePoint at, std::function<void()> fn) {
  RTPB_EXPECTS(at >= now_);
  RTPB_EXPECTS(fn != nullptr);
  auto state = std::make_shared<EventHandle::State>();
  state->fn = std::move(fn);
  queue_.push(QueueEntry{at, next_seq_++, state});
  ++live_events_;
  return EventHandle{std::move(state)};
}

EventHandle Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  RTPB_EXPECTS(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    --live_events_;
    if (entry.state->cancelled) continue;
    RTPB_ASSERT(entry.at >= now_);
    now_ = entry.at;
    entry.state->fired = true;
    ++fired_events_;
    auto fn = std::move(entry.state->fn);
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Drop cancelled entries without advancing the clock.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      --live_events_;
      continue;
    }
    if (queue_.top().at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  RTPB_EXPECTS(period_ > Duration::zero());
  RTPB_EXPECTS(fn_ != nullptr);
}

void PeriodicTimer::start_at(TimePoint first) {
  stop();
  running_ = true;
  arm(first);
}

void PeriodicTimer::stop() {
  pending_.cancel();
  running_ = false;
}

void PeriodicTimer::arm(TimePoint at) {
  pending_ = sim_.schedule_at(at, [this, at] {
    if (!running_) return;
    // Re-arm first so fn_ may call stop()/set_period() and win.
    arm(at + period_);
    fn_();
  });
}

}  // namespace rtpb::sim
