// Execution tracing: a bounded in-memory timeline of typed events that
// components append to when tracing is enabled.  Used to debug experiment
// runs (why did this update arrive late?) and by tests that assert on
// event ordering across subsystems.  Disabled tracing costs one branch
// per call site.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace rtpb::sim {

enum class TraceCategory : std::uint8_t {
  kCpu,       ///< job release / start / preempt / finish
  kNet,       ///< frame send / drop / deliver
  kProtocol,  ///< x-kernel layer events
  kService,   ///< RTPB-level: updates, failover, admission
  kUser,      ///< experiment-injected markers
};

[[nodiscard]] const char* trace_category_name(TraceCategory c);

struct TraceEvent {
  TimePoint at;
  TraceCategory category{};
  std::string label;   ///< short event name, e.g. "job-finish"
  std::string detail;  ///< free-form context, e.g. "task 3 idx 17"
};

class TraceRecorder {
 public:
  /// Start recording, keeping at most `capacity` most-recent events.
  void enable(std::size_t capacity = 65536);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(TimePoint at, TraceCategory category, std::string label,
              std::string detail = {});

  [[nodiscard]] const std::deque<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  void clear();

  /// FNV-1a digest folded over every event recorded since enable()/clear(),
  /// including events later evicted from the bounded window.  Two runs of a
  /// seeded simulation are behaviourally identical iff their digests match,
  /// which is what the chaos harness asserts for seed reproducibility.
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  /// Total events recorded (evicted ones included).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

  /// Events whose label matches exactly (convenience for assertions).
  [[nodiscard]] std::vector<TraceEvent> with_label(const std::string& label) const;
  /// Multi-line human-readable dump (optionally one category only).
  [[nodiscard]] std::string render() const;

 private:
  static constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::size_t dropped_ = 0;
  std::uint64_t digest_ = kFnvOffset;
  std::uint64_t recorded_ = 0;
  std::deque<TraceEvent> events_;
};

}  // namespace rtpb::sim
