// Object→shard→primary-group directory (sharded scale-out).
//
// Placement is a pure function of the object id: FNV-1a over the id's four
// bytes, reduced modulo the shard count.  No seed enters the hash, so the
// same id lands on the same shard in every process, run, and simulation
// seed — registration order and rng state cannot move objects around.
//
// Shards map onto primary-backup GROUPS (each group is one RTPB service of
// the paper: a primary, its backups, one admission controller's CPU).  The
// initial mapping stripes shards round-robin; remap_shard() moves one
// shard to another group explicitly — there is deliberately no automatic
// rebalancing, so a remap is an operator-visible event and every other
// shard's placement stays put.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rtpb::shard {

using GroupId = std::uint32_t;
using ShardId = std::uint32_t;

class ShardDirectory {
 public:
  /// `shard_count` ≥ `group_count` ≥ 1; shard s starts on group s % groups.
  ShardDirectory(ShardId shard_count, GroupId group_count);

  [[nodiscard]] ShardId shard_count() const { return shard_count_; }
  [[nodiscard]] GroupId group_count() const { return group_count_; }

  /// Deterministic hash placement: same id → same shard, always.
  [[nodiscard]] ShardId shard_of(core::ObjectId id) const;
  [[nodiscard]] GroupId group_of_shard(ShardId shard) const;
  [[nodiscard]] GroupId group_of(core::ObjectId id) const {
    return group_of_shard(shard_of(id));
  }

  /// Explicitly move one shard to another group.  Objects of every other
  /// shard keep their group assignment.
  void remap_shard(ShardId shard, GroupId group);
  [[nodiscard]] std::uint64_t remap_count() const { return remaps_; }

 private:
  ShardId shard_count_;
  GroupId group_count_;
  std::vector<GroupId> group_of_shard_;
  std::uint64_t remaps_ = 0;
};

}  // namespace rtpb::shard
