// Per-shard stable-timestamp frontier.
//
// A shard's frontier F is the minimum, over its live objects, of the last
// origin timestamp each object is known to have reached — the instant up
// to which EVERY object of the shard is provably fresh.  Cross-shard
// inter-object constraints δ_ij reduce to frontier arithmetic: at time t
// the pair (i ∈ A, j ∈ B) satisfies δ_ij whenever t − F_A ≤ δ_ij and
// t − F_B ≤ δ_ij, so shards exchange one timestamp instead of object
// tables (wire::Frontier frames).
//
// Amortised O(1) per advance, zero steady-state allocations: values live
// in a flat slot vector; the cached minimum is only rescanned when the
// argmin slot itself advances.  Under a round-robin update pattern (every
// object refreshed once per rotation) that is one O(n) scan per n
// advances.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/types.hpp"
#include "util/time.hpp"

namespace rtpb::shard {

class FrontierTracker {
 public:
  /// Begin tracking `id` at `initial` (typically the registration time or
  /// TimePoint zero for never-written).  Duplicate track() is ignored.
  void track(core::ObjectId id, TimePoint initial);
  /// Stop tracking `id`; its slot is recycled.  Unknown ids are ignored.
  void forget(core::ObjectId id);
  /// Advance `id`'s stable timestamp (monotone: an older ts is ignored).
  /// Unknown ids are ignored — callers may feed every applied update
  /// through without filtering by shard membership first.
  void advance(core::ObjectId id, TimePoint ts);

  /// The frontier: min over tracked objects, TimePoint::max() when empty
  /// (an empty shard constrains nothing).
  [[nodiscard]] TimePoint frontier() const;

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] bool empty() const { return index_.empty(); }

 private:
  struct Slot {
    core::ObjectId id = core::kInvalidObject;
    TimePoint ts{};
    bool live = false;
  };

  std::vector<Slot> slots_;
  std::map<core::ObjectId, std::size_t> index_;
  std::vector<std::size_t> free_slots_;
  /// Cached argmin; invalidated when the minimum slot advances or dies.
  mutable std::size_t min_slot_ = 0;
  mutable bool min_valid_ = false;
};

}  // namespace rtpb::shard
