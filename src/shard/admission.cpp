#include "shard/admission.hpp"

#include <algorithm>

namespace rtpb::shard {

ShardedAdmission::ShardedAdmission(const ShardDirectory& directory, core::ServiceConfig config,
                                   Duration link_delay_bound)
    : directory_(directory) {
  shards_.reserve(directory.shard_count());
  for (ShardId s = 0; s < directory.shard_count(); ++s) {
    shards_.emplace_back(config, link_delay_bound);
  }
}

core::AdmissionResult ShardedAdmission::admit(const core::ObjectSpec& spec) {
  core::AdmissionResult r = home(spec.id).admit(spec);
  if (r.ok()) ++admitted_total_;
  return r;
}

void ShardedAdmission::remove(core::ObjectId id) {
  // Withdraw the object's cross-shard constraints first so the PARTNER
  // side's self-pair cap is restored too — the home controller only knows
  // about this side's cap.
  for (std::size_t i = cross_.size(); i-- > 0;) {
    const core::InterObjectConstraint c = cross_[i];
    if (c.first != id && c.second != id) continue;
    cross_.erase(cross_.begin() + static_cast<std::ptrdiff_t>(i));
    const CrossShardCaps caps = decompose_cross_constraint(c);
    home(c.first).remove_constraint(caps.first);
    home(c.second).remove_constraint(caps.second);
  }
  core::AdmissionController& ac = home(id);
  const std::size_t before = ac.admitted_count();
  ac.remove(id);
  admitted_total_ -= before - ac.admitted_count();
}

core::AdmissionStatus ShardedAdmission::add_constraint(const core::InterObjectConstraint& c) {
  const ShardId sa = directory_.shard_of(c.first);
  const ShardId sb = directory_.shard_of(c.second);
  if (sa == sb) return shards_[sa].add_constraint(c);

  // Cross-shard: cap each side on its home shard; roll the first cap back
  // if the second is rejected, so failure leaves no residue.
  const CrossShardCaps caps = decompose_cross_constraint(c);
  core::AdmissionStatus a = shards_[sa].add_constraint(caps.first);
  if (!a.ok()) return a;
  core::AdmissionStatus b = shards_[sb].add_constraint(caps.second);
  if (!b.ok()) {
    shards_[sa].remove_constraint(caps.first);
    return b;
  }
  cross_.push_back(c);
  return {};
}

void ShardedAdmission::remove_constraint(const core::InterObjectConstraint& c) {
  const ShardId sa = directory_.shard_of(c.first);
  const ShardId sb = directory_.shard_of(c.second);
  if (sa == sb) {
    shards_[sa].remove_constraint(c);
    return;
  }
  auto match = std::find_if(cross_.begin(), cross_.end(),
                            [&c](const core::InterObjectConstraint& have) {
                              return have.first == c.first && have.second == c.second &&
                                     have.delta == c.delta;
                            });
  if (match == cross_.end()) return;
  cross_.erase(match);
  const CrossShardCaps caps = decompose_cross_constraint(c);
  shards_[sa].remove_constraint(caps.first);
  shards_[sb].remove_constraint(caps.second);
}

Duration ShardedAdmission::update_period(core::ObjectId id) const {
  return shards_[directory_.shard_of(id)].update_period(id);
}

double ShardedAdmission::total_utilization() const {
  double u = 0.0;
  for (const core::AdmissionController& ac : shards_) u += ac.total_utilization();
  return u;
}

}  // namespace rtpb::shard
