// ShardCluster — sharded scale-out deployment: several primary-backup
// GROUPS (each one RTPB service of the paper: primary, backups, client,
// admission domain) composed over ONE simulated network and timeline, with
// objects routed to groups through the ShardDirectory.
//
// Group primaries are meshed for the cross-shard frontier exchange: each
// primary is every other primary's frontier peer and receives kFrontier
// frames carrying the peer shards' stable timestamps.  The exchange is
// explicitly driven (exchange_frontiers()) — no internal timer — so runs
// that never call it produce exactly the traffic of independent
// single-group services.
//
// A shard's STABLE timestamp is taken from the group's first backup: the
// minimum, over the shard's objects, of the origin timestamp the backup
// has APPLIED — what survives a primary crash, which is the quantity
// cross-shard consistency must be judged on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/metrics.hpp"
#include "core/name_service.hpp"
#include "core/server.hpp"
#include "core/types.hpp"
#include "net/network.hpp"
#include "shard/directory.hpp"
#include "shard/frontier.hpp"
#include "sim/simulator.hpp"

namespace rtpb::shard {

struct ShardClusterParams {
  std::uint64_t seed = 1;
  net::LinkParams link;
  core::ServiceConfig config;
  ShardId shard_count = 4;
  GroupId group_count = 2;
  std::size_t backup_count = 1;
  std::string service_prefix = "rtpb-shard";
};

class ShardCluster {
 public:
  explicit ShardCluster(ShardClusterParams params);

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  /// Start every group's servers.  Call before registering objects.
  void start();
  void run_for(Duration d);

  // ---- workload ----
  /// Route the registration to the object's home group (directory lookup,
  /// then that group's client/admission path).
  core::AdmissionResult register_object(const core::ObjectSpec& spec);
  /// Same-group constraints delegate to the home group's admission.
  /// Cross-group constraints are pre-flighted on both sides (dry-run), then
  /// committed as one self-pair period cap per side; the runtime check is
  /// frontier arithmetic (cross_constraint_satisfied).
  core::AdmissionStatus add_constraint(const core::InterObjectConstraint& c);

  // ---- cross-shard frontier exchange ----
  /// Recompute every shard's stable-timestamp frontier from its group's
  /// backup store and broadcast each over the wire to peer group
  /// primaries (kFrontier frames).
  void exchange_frontiers();
  /// This side's view of shard `s`'s frontier (recomputed at the last
  /// exchange_frontiers()); TimePoint::max() for an empty shard.
  [[nodiscard]] TimePoint local_frontier(ShardId s) const {
    return frontiers_[s].frontier();
  }
  /// What group `g`'s primary has LEARNED of shard `s`'s frontier via
  /// kFrontier frames; TimePoint::zero() if nothing arrived yet.
  [[nodiscard]] TimePoint observed_frontier(GroupId g, ShardId s) const {
    return groups_[g]->primary->peer_frontier(s);
  }
  /// The frontier form of δ_ij for a cross-shard pair: at instant `at`,
  /// both home shards' frontiers must be within c.delta of `at`.
  [[nodiscard]] bool cross_constraint_satisfied(const core::InterObjectConstraint& c,
                                                TimePoint at) const;
  [[nodiscard]] const std::vector<core::InterObjectConstraint>& cross_constraints() const {
    return cross_;
  }

  // ---- accessors ----
  [[nodiscard]] ShardDirectory& directory() { return directory_; }
  [[nodiscard]] const ShardDirectory& directory() const { return directory_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] GroupId group_count() const { return params_.group_count; }
  [[nodiscard]] core::ReplicaServer& primary(GroupId g) { return *groups_[g]->primary; }
  [[nodiscard]] core::ReplicaServer& backup(GroupId g) { return *groups_[g]->backups.front(); }
  [[nodiscard]] core::ClientApp& client(GroupId g) { return *groups_[g]->client; }
  [[nodiscard]] core::Metrics& metrics(GroupId g) { return groups_[g]->metrics; }
  [[nodiscard]] const std::vector<core::ObjectId>& objects_of_shard(ShardId s) const {
    return shard_objects_[s];
  }
  [[nodiscard]] std::size_t registered_count() const { return registered_; }
  [[nodiscard]] const ShardClusterParams& params() const { return params_; }

 private:
  /// One primary-backup group.  Heap-allocated so Metrics and server
  /// addresses stay stable as groups_ grows.
  struct Group {
    core::Metrics metrics;
    std::unique_ptr<core::ReplicaServer> primary;
    std::vector<std::unique_ptr<core::ReplicaServer>> backups;
    std::unique_ptr<core::ClientApp> client;
  };

  ShardClusterParams params_;
  ShardDirectory directory_;
  sim::Simulator sim_;
  net::Network network_;
  core::NameService names_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::vector<FrontierTracker> frontiers_;          ///< one per shard
  std::vector<std::vector<core::ObjectId>> shard_objects_;
  std::vector<core::InterObjectConstraint> cross_;  ///< committed cross-group δ_ij
  std::size_t registered_ = 0;
  bool started_ = false;
};

}  // namespace rtpb::shard
