#include "shard/cluster.hpp"

#include <utility>

#include "shard/admission.hpp"
#include "util/assert.hpp"

namespace rtpb::shard {

ShardCluster::ShardCluster(ShardClusterParams params)
    : params_(std::move(params)),
      directory_(params_.shard_count, params_.group_count),
      sim_(params_.seed),
      network_(sim_) {
  RTPB_EXPECTS(params_.backup_count >= 1);
  frontiers_.resize(params_.shard_count);
  shard_objects_.resize(params_.shard_count);

  for (GroupId g = 0; g < params_.group_count; ++g) {
    auto group = std::make_unique<Group>();
    const std::string service_name = params_.service_prefix + "-" + std::to_string(g);
    group->primary = std::make_unique<core::ReplicaServer>(
        sim_, network_, names_, params_.config, group->metrics, core::Role::kPrimary,
        service_name);
    for (std::size_t i = 0; i < params_.backup_count; ++i) {
      auto backup = std::make_unique<core::ReplicaServer>(
          sim_, network_, names_, params_.config, group->metrics, core::Role::kBackup,
          service_name);
      network_.connect(group->primary->node(), backup->node(), params_.link);
      group->primary->add_peer(backup->endpoint());
      backup->add_peer(group->primary->endpoint());
      backup->set_successor(i == 0);
      group->backups.push_back(std::move(backup));
    }
    for (std::size_t i = 0; i < group->backups.size(); ++i) {
      for (std::size_t j = i + 1; j < group->backups.size(); ++j) {
        network_.connect(group->backups[i]->node(), group->backups[j]->node(), params_.link);
      }
    }
    group->client =
        std::make_unique<core::ClientApp>(sim_, *group->primary, sim_.rng().fork(), /*active=*/true);
    groups_.push_back(std::move(group));
  }

  // Mesh the group primaries for the kFrontier exchange.  These links are
  // only used by explicitly driven frontier frames; replication traffic
  // stays inside each group.
  for (GroupId i = 0; i < params_.group_count; ++i) {
    for (GroupId j = i + 1; j < params_.group_count; ++j) {
      core::ReplicaServer& pi = *groups_[i]->primary;
      core::ReplicaServer& pj = *groups_[j]->primary;
      network_.connect(pi.node(), pj.node(), params_.link);
      pi.add_frontier_peer(pj.endpoint());
      pj.add_frontier_peer(pi.endpoint());
    }
  }
}

void ShardCluster::start() {
  RTPB_EXPECTS(!started_);
  started_ = true;
  for (auto& g : groups_) {
    g->primary->start();
    for (auto& b : g->backups) b->start();
  }
}

void ShardCluster::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

core::AdmissionResult ShardCluster::register_object(const core::ObjectSpec& spec) {
  const ShardId s = directory_.shard_of(spec.id);
  const GroupId g = directory_.group_of_shard(s);
  core::AdmissionResult r = groups_[g]->client->add_object(spec);
  if (r.ok()) {
    shard_objects_[s].push_back(spec.id);
    // The frontier starts at the epoch origin: nothing has been made
    // stable for this object yet, which is exactly what a frontier of
    // zero asserts.
    frontiers_[s].track(spec.id, TimePoint::zero());
    ++registered_;
  }
  return r;
}

core::AdmissionStatus ShardCluster::add_constraint(const core::InterObjectConstraint& c) {
  const ShardId sa = directory_.shard_of(c.first);
  const ShardId sb = directory_.shard_of(c.second);
  const GroupId ga = directory_.group_of_shard(sa);
  const GroupId gb = directory_.group_of_shard(sb);
  if (ga == gb) return groups_[ga]->client->add_constraint(c);

  // Cross-group: one self-pair period cap per side (see shard/admission.hpp
  // for why the decomposition is sound).  A server-side add_constraint
  // replicates immediately and cannot be rolled back, so BOTH sides are
  // validated with the controller's dry-run before either commits.
  const CrossShardCaps caps = decompose_cross_constraint(c);
  core::AdmissionStatus a = groups_[ga]->primary->admission().check_constraint(caps.first);
  if (!a.ok()) return a;
  core::AdmissionStatus b = groups_[gb]->primary->admission().check_constraint(caps.second);
  if (!b.ok()) return b;
  // The sim is single-threaded: nothing can invalidate the dry-runs
  // between check and commit, so the commits must succeed.
  a = groups_[ga]->client->add_constraint(caps.first);
  RTPB_ASSERT(a.ok());
  b = groups_[gb]->client->add_constraint(caps.second);
  RTPB_ASSERT(b.ok());
  cross_.push_back(c);
  return {};
}

void ShardCluster::exchange_frontiers() {
  for (ShardId s = 0; s < params_.shard_count; ++s) {
    if (shard_objects_[s].empty()) continue;
    const GroupId g = directory_.group_of_shard(s);
    // Stability is judged at the group's successor backup: the origin
    // timestamp it has APPLIED is what survives a primary crash.
    const core::ObjectStore& stable = groups_[g]->backups.front()->store();
    for (core::ObjectId id : shard_objects_[s]) {
      const auto state = stable.find(id);
      if (!state || state->version == 0) continue;
      frontiers_[s].advance(id, state->origin_timestamp);
    }
    const TimePoint f = frontiers_[s].frontier();
    if (f == TimePoint::max()) continue;
    groups_[g]->primary->announce_frontier(s, f);
  }
}

bool ShardCluster::cross_constraint_satisfied(const core::InterObjectConstraint& c,
                                              TimePoint at) const {
  const ShardId sa = directory_.shard_of(c.first);
  const ShardId sb = directory_.shard_of(c.second);
  const TimePoint fa = frontiers_[sa].frontier();
  const TimePoint fb = frontiers_[sb].frontier();
  // An untracked shard (no objects) imposes nothing.
  if (fa != TimePoint::max() && at - fa > c.delta) return false;
  if (fb != TimePoint::max() && at - fb > c.delta) return false;
  return true;
}

}  // namespace rtpb::shard
