#include "shard/frontier.hpp"

namespace rtpb::shard {

void FrontierTracker::track(core::ObjectId id, TimePoint initial) {
  if (index_.contains(id)) return;
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  slots_[slot] = Slot{id, initial, true};
  index_.emplace(id, slot);
  // A new object can only pull the frontier down.
  if (min_valid_ && initial < slots_[min_slot_].ts) min_slot_ = slot;
}

void FrontierTracker::forget(core::ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  const std::size_t slot = it->second;
  slots_[slot].live = false;
  free_slots_.push_back(slot);
  index_.erase(it);
  if (min_valid_ && slot == min_slot_) min_valid_ = false;
}

void FrontierTracker::advance(core::ObjectId id, TimePoint ts) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  Slot& slot = slots_[it->second];
  if (ts <= slot.ts) return;
  slot.ts = ts;
  // Advancing any slot but the argmin leaves the minimum untouched; the
  // argmin advancing is the one case that forces a rescan (deferred to
  // the next frontier() read).
  if (min_valid_ && it->second == min_slot_) min_valid_ = false;
}

TimePoint FrontierTracker::frontier() const {
  if (index_.empty()) return TimePoint::max();
  if (!min_valid_) {
    std::size_t best = 0;
    bool found = false;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].live) continue;
      if (!found || slots_[i].ts < slots_[best].ts) {
        best = i;
        found = true;
      }
    }
    min_slot_ = best;
    min_valid_ = true;
  }
  return slots_[min_slot_].ts;
}

}  // namespace rtpb::shard
