#include "shard/directory.hpp"

#include "util/log.hpp"

namespace rtpb::shard {

ShardDirectory::ShardDirectory(ShardId shard_count, GroupId group_count)
    : shard_count_(shard_count), group_count_(group_count) {
  RTPB_EXPECTS(group_count >= 1);
  RTPB_EXPECTS(shard_count >= group_count);
  group_of_shard_.reserve(shard_count);
  for (ShardId s = 0; s < shard_count; ++s) group_of_shard_.push_back(s % group_count);
}

ShardId ShardDirectory::shard_of(core::ObjectId id) const {
  // FNV-1a over the id's four little-endian bytes: cheap, stable across
  // builds, and mixes sequential ids well enough for even shard load.
  std::uint64_t h = 14695981039346656037ULL;
  for (int i = 0; i < 4; ++i) {
    h ^= (id >> (8 * i)) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return static_cast<ShardId>(h % shard_count_);
}

GroupId ShardDirectory::group_of_shard(ShardId shard) const {
  RTPB_EXPECTS(shard < shard_count_);
  return group_of_shard_[shard];
}

void ShardDirectory::remap_shard(ShardId shard, GroupId group) {
  RTPB_EXPECTS(shard < shard_count_);
  RTPB_EXPECTS(group < group_count_);
  if (group_of_shard_[shard] == group) return;
  group_of_shard_[shard] = group;
  ++remaps_;
}

}  // namespace rtpb::shard
