// Sharded admission control: one AdmissionController per shard, routed
// through the ShardDirectory.
//
// Each shard is its own CPU/schedulability domain — the §4.2 checks run
// against only that shard's admitted set, so a registration costs the
// controller's amortised O(1) aggregate update regardless of how many
// objects the OTHER shards carry.  That is what lets a directory of a
// million objects admit at a flat per-registration cost (the shard-scale
// bench gates on exactly this).
//
// Cross-shard inter-object constraints δ_ij (i and j on different shards)
// cannot be judged inside one controller.  They decompose soundly: each
// side registers a SELF-PAIR constraint {i, i, δ_ij} on its home shard —
// capping that object's transmission period at δ_ij — and the runtime
// check becomes frontier arithmetic (each shard's stable-timestamp
// frontier must stay within δ_ij of now; see shard/frontier.hpp and the
// kFrontier wire exchange).  If the second side's cap fails admission the
// first side's cap is rolled back, so a rejected constraint leaves no
// residue.
#pragma once

#include <cstdint>
#include <vector>

#include "core/admission.hpp"
#include "shard/directory.hpp"

namespace rtpb::shard {

/// The decomposition of a cross-shard constraint δ_ij: one SELF-PAIR
/// period cap per side (see the header comment for why this is sound).
/// Every consumer — ShardedAdmission, ShardCluster, the parallel
/// PartitionedCluster — derives its caps through this one function so the
/// two halves of a decomposed constraint can never drift apart.
struct CrossShardCaps {
  core::InterObjectConstraint first;   ///< cap on c.first's home shard
  core::InterObjectConstraint second;  ///< cap on c.second's home shard
};

[[nodiscard]] inline CrossShardCaps decompose_cross_constraint(
    const core::InterObjectConstraint& c) {
  return {{c.first, c.first, c.delta}, {c.second, c.second, c.delta}};
}

class ShardedAdmission {
 public:
  /// One controller per shard, all with the same config and link bound ℓ.
  /// The directory outlives this object.
  ShardedAdmission(const ShardDirectory& directory, core::ServiceConfig config,
                   Duration link_delay_bound);

  /// Route the registration to the object's home shard.  O(1) amortised.
  core::AdmissionResult admit(const core::ObjectSpec& spec);
  /// Remove the object from its home shard; any cross-shard constraints it
  /// participates in are withdrawn on BOTH sides (partner caps restored).
  void remove(core::ObjectId id);

  /// Same-shard pairs delegate to the home controller.  Cross-shard pairs
  /// decompose into one self-pair cap per side (rolled back atomically on
  /// rejection) and are recorded in cross_constraints().
  core::AdmissionStatus add_constraint(const core::InterObjectConstraint& c);
  /// Withdraw a constraint added through add_constraint (by value).
  void remove_constraint(const core::InterObjectConstraint& c);

  [[nodiscard]] Duration update_period(core::ObjectId id) const;
  [[nodiscard]] std::size_t admitted_count() const { return admitted_total_; }
  [[nodiscard]] std::size_t admitted_in_shard(ShardId shard) const {
    return shards_[shard].admitted_count();
  }
  [[nodiscard]] const core::AdmissionController& shard(ShardId s) const { return shards_[s]; }
  [[nodiscard]] ShardId shard_count() const {
    return static_cast<ShardId>(shards_.size());
  }
  [[nodiscard]] const std::vector<core::InterObjectConstraint>& cross_constraints() const {
    return cross_;
  }
  /// Σ total_utilization over shards (each shard is its own CPU).
  [[nodiscard]] double total_utilization() const;

 private:
  [[nodiscard]] core::AdmissionController& home(core::ObjectId id) {
    return shards_[directory_.shard_of(id)];
  }

  const ShardDirectory& directory_;
  std::vector<core::AdmissionController> shards_;
  std::vector<core::InterObjectConstraint> cross_;
  std::size_t admitted_total_ = 0;
};

}  // namespace rtpb::shard
