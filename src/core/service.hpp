// RtpbService — the public facade.  Assembles the full system of the
// paper's Figure 5 on a simulated two-host LAN: a primary server with a
// co-located client application, a backup server with a standby client
// twin, the x-kernel protocol stacks, the name service, and the shared
// metrics recorder.  Examples and benches drive experiments through this
// type alone.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/client.hpp"
#include "core/metrics.hpp"
#include "core/name_service.hpp"
#include "core/server.hpp"
#include "core/types.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "store/device.hpp"
#include "store/durable_store.hpp"

namespace rtpb::core {

struct ServiceParams {
  std::uint64_t seed = 1;
  net::LinkParams link;           ///< primary↔backup link characteristics
  ServiceConfig config;
  std::string service_name = "rtpb-service";
  /// Number of backup replicas (paper future work: "support for multiple
  /// backups").  The first backup is the designated failover successor;
  /// further backups re-peer with the new primary after a failover.
  std::size_t backup_count = 1;
  /// Give every replica a write-ahead-logged object store on simulated
  /// storage devices, enabling crash–restart via restart_primary() /
  /// restart_backup().  Off by default: WAL appends are synchronous (no
  /// sim events, no rng draws), so enabling durability without crashing
  /// keeps traces and digests byte-identical — but off keeps the
  /// historical memory profile.
  bool durable = false;
  /// WAL records between automatic checkpoints (durable mode).
  std::size_t checkpoint_every = 64;
};

class RtpbService {
 public:
  explicit RtpbService(ServiceParams params);

  RtpbService(const RtpbService&) = delete;
  RtpbService& operator=(const RtpbService&) = delete;

  /// Start both servers and heartbeats.  Call before registering objects.
  void start();

  /// Advance virtual time by `d`.
  void run_for(Duration d);
  /// Advance by `d`, then discard all metrics gathered so far (warm-up).
  void warm_up(Duration d);
  /// Close open inconsistency intervals at the current instant (call once
  /// at the end of an experiment, before reading metrics).
  void finish();

  // ---- workload ----
  AdmissionResult register_object(const ObjectSpec& spec) { return client_->add_object(spec); }
  AdmissionStatus add_constraint(const InterObjectConstraint& c) {
    return client_->add_constraint(c);
  }

  // ---- failure injection / failover ----
  void crash_primary();
  void crash_backup();
  /// Durable mode only: restart the (original) primary replica from its
  /// durable state.  It rejoins as an orphaned backup; the service polls
  /// the name service for the acting primary and drives an incremental
  /// resync (kResyncRequest → kStateDelta).
  void restart_primary();
  /// Durable mode only: restart backup `index` the same way.
  void restart_backup(std::size_t index = 0);
  /// The simulated storage devices of a replica (crash-point / torn-write
  /// injection), or nullptr when not durable.  `replica_index` follows
  /// for_each_replica order: 0 = original primary, then backups.
  [[nodiscard]] store::SimStorageDevice* wal_device(std::size_t replica_index);
  [[nodiscard]] store::SimStorageDevice* checkpoint_device(std::size_t replica_index);
  /// Create a fresh standby host wired to the current primary, have the
  /// primary recruit it, and return it.  Models §4.4's "waits to recruit a
  /// new backup".
  ReplicaServer& add_standby();

  /// The server currently acting as primary (changes after failover).
  [[nodiscard]] ReplicaServer& acting_primary();

  // ---- oracle observation points (chaos harness) ----
  /// Visit every replica ever created, crashed or not, in a deterministic
  /// order: original primary, backups in creation order, standby last.
  void for_each_replica(const std::function<void(const ReplicaServer&)>& fn) const;
  /// Live (non-crashed) replicas currently claiming the primary role.
  /// Exactly 1 whenever the system is healthy and failover has settled.
  [[nodiscard]] std::size_t primaries_alive() const;

  // ---- accessors ----
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] NameService& names() { return names_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] ReplicaServer& primary() { return *primary_; }
  /// The designated-successor backup (first of backups()).
  [[nodiscard]] ReplicaServer& backup() { return *backups_.front(); }
  [[nodiscard]] std::vector<std::unique_ptr<ReplicaServer>>& backups() { return backups_; }
  [[nodiscard]] ClientApp& client() { return *client_; }
  [[nodiscard]] ClientApp& backup_client() { return *backup_client_; }
  /// The standby created by add_standby(), or nullptr before that.
  [[nodiscard]] ReplicaServer* standby() { return standby_.get(); }
  [[nodiscard]] const ServiceParams& params() const { return params_; }
  /// Delay bound ℓ of the replication link as admission control sees it.
  [[nodiscard]] Duration link_delay_bound() const;

 private:
  /// Per-replica durable backing: two simulated devices (WAL +
  /// checkpoint) and the store that owns the framing/replay logic.
  struct ReplicaStorage {
    store::SimStorageDevice wal;
    store::SimStorageDevice checkpoint;
    store::DurableStore durable;
    explicit ReplicaStorage(std::size_t checkpoint_every)
        : durable(wal, checkpoint, checkpoint_every) {}
  };

  ServiceParams params_;
  sim::Simulator sim_;
  net::Network network_;
  NameService names_;
  Metrics metrics_;
  std::unique_ptr<ReplicaServer> primary_;
  std::vector<std::unique_ptr<ReplicaServer>> backups_;
  std::unique_ptr<ClientApp> client_;
  std::unique_ptr<ClientApp> backup_client_;
  std::unique_ptr<ReplicaServer> standby_;
  /// for_each_replica order: [0] original primary, then the backups.
  /// Empty unless params_.durable.
  std::vector<std::unique_ptr<ReplicaStorage>> storage_;
  bool started_ = false;

  void wire_backup_hooks();
  /// Non-successor backup lost the primary: poll the name service until
  /// the successor has published itself, then follow it.
  void repoint_backup(ReplicaServer& backup, net::Endpoint dead_primary);
  /// Restart `replica` from durable state, then poll the name service for
  /// the acting primary and drive follow + incremental resync.
  void restart_replica(ReplicaServer& replica);
  void rejoin_when_primary_known(ReplicaServer& replica);
  [[nodiscard]] ReplicaStorage* storage_for(std::size_t replica_index);
};

}  // namespace rtpb::core
