// Simulated name service — the "name file" of paper §4.4.  Clients resolve
// the service name to the current primary's address; on failover the new
// primary rewrites the entry to point at itself.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "net/address.hpp"

namespace rtpb::core {

class NameService {
 public:
  void publish(const std::string& service, net::Endpoint where) { entries_[service] = where; }

  [[nodiscard]] std::optional<net::Endpoint> lookup(const std::string& service) const {
    auto it = entries_.find(service);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  void withdraw(const std::string& service) { entries_.erase(service); }

 private:
  std::map<std::string, net::Endpoint> entries_;
};

}  // namespace rtpb::core
