#include "core/heartbeat.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace rtpb::core {

FailureDetector::FailureDetector(sim::Simulator& sim, Params params, SendPingFn send_ping,
                                 PeerDeadFn on_peer_dead)
    : sim_(sim),
      params_(params),
      send_ping_(std::move(send_ping)),
      on_peer_dead_(std::move(on_peer_dead)),
      timer_(sim, params.ping_period, [this] { this->send_ping(); }) {
  RTPB_EXPECTS(send_ping_ != nullptr);
  RTPB_EXPECTS(on_peer_dead_ != nullptr);
  RTPB_EXPECTS(params_.ack_timeout <= params_.ping_period);
}

void FailureDetector::start() {
  misses_ = 0;
  peer_dead_ = false;
  last_traffic_ = sim_.now();
  timer_.start();
}

void FailureDetector::stop() {
  timer_.stop();
  timeout_event_.cancel();
}

void FailureDetector::send_ping() {
  if (peer_dead_) return;
  const std::uint64_t seq = next_seq_++;
  ++pings_sent_;
  if (sim_.telemetry().enabled()) sim_.telemetry().registry().counter("core.heartbeat.pings").add();
  send_ping_(seq);
  const TimePoint sent_at = sim_.now();
  outstanding_seq_ = seq;
  outstanding_sent_at_ = sent_at;
  timeout_event_.cancel();
  timeout_event_ =
      sim_.schedule_after(params_.ack_timeout, [this, seq, sent_at] { on_timeout(seq, sent_at); });
}

void FailureDetector::on_timeout(std::uint64_t seq, TimePoint sent_at) {
  if (peer_dead_) return;
  if (last_traffic_ >= sent_at) {
    misses_ = 0;
    return;
  }
  ++misses_;
  RTPB_DEBUG("heartbeat", "ping %llu unanswered (miss %u/%u)",
             static_cast<unsigned long long>(seq), misses_, params_.max_misses);
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.heartbeat.misses").add();
    hub.record(telemetry::kNoSpan, 0, telemetry::EventKind::kInstant, "heartbeat", "ping-miss",
               "seq " + std::to_string(seq) + " miss " + std::to_string(misses_) + "/" +
                   std::to_string(params_.max_misses));
  }
  if (misses_ >= params_.max_misses) {
    peer_dead_ = true;
    timer_.stop();
    RTPB_INFO("heartbeat", "peer declared dead after %u misses", misses_);
    if (hub.enabled()) {
      hub.registry().counter("core.heartbeat.peer_deaths").add();
      hub.record(telemetry::kNoSpan, 0, telemetry::EventKind::kInstant, "heartbeat",
                 "peer-dead", "after " + std::to_string(misses_) + " misses");
    }
    on_peer_dead_();
  }
}

void FailureDetector::on_ping_ack(std::uint64_t seq) {
  // A valid ack names a ping we actually sent and have not yet credited.
  // Anything else is a duplicate or a stale replay (chaos `dup`/`reorder`
  // verbs) and proves nothing about the peer's liveness *now*.
  if (seq == 0 || seq >= next_seq_ || seq <= last_acked_seq_) {
    ++stale_acks_;
    if (sim_.telemetry().enabled()) {
      sim_.telemetry().registry().counter("core.heartbeat.stale_acks").add();
    }
    return;
  }
  last_acked_seq_ = seq;
  last_traffic_ = sim_.now();
  if (!peer_dead_) misses_ = 0;
  // RTT is only measurable for the latest ping — its send time is the one
  // we stored.  An ack for an older (already timed-out) seq is credited
  // for liveness above but yields no sample.
  if (seq == outstanding_seq_ && on_rtt_) {
    on_rtt_(sim_.now() - outstanding_sent_at_);
  }
}

void FailureDetector::set_ack_timeout(Duration t) {
  if (t <= Duration::zero()) return;
  params_.ack_timeout = std::min(t, params_.ping_period);
}

void FailureDetector::note_traffic() {
  // Non-ack traffic excuses the currently outstanding ping (on_timeout
  // compares last_traffic_ against the ping's send time) but does not
  // clear already-accumulated misses: a replayed duplicate of an old
  // frame must not reset the count the way a matched ack does.
  last_traffic_ = sim_.now();
}

}  // namespace rtpb::core
