// In-memory replicated object table.  Both the primary and the backup keep
// one; the primary's versions advance on client updates, the backup's on
// applied UPDATE messages.  Timestamps record the T_i(t) of the paper's
// consistency definitions: the finish time of the last update at that site.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "util/bytebuffer.hpp"
#include "util/time.hpp"

namespace rtpb::core {

struct ObjectState {
  ObjectSpec spec;
  Bytes value;
  std::uint64_t version = 0;       ///< 0 = never written
  TimePoint timestamp{};           ///< finish time of the last update here
  /// Primary-side origin timestamp of the version the site holds.  On the
  /// primary this equals `timestamp`; on the backup it is the T_i^P
  /// carried in the UPDATE that produced this version.
  TimePoint origin_timestamp{};
};

class ObjectStore {
 public:
  /// Insert a new object in the unwritten state.  Fails (returns false)
  /// on a duplicate id.
  bool insert(const ObjectSpec& spec);
  bool erase(ObjectId id);

  [[nodiscard]] bool contains(ObjectId id) const { return objects_.contains(id); }
  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  /// Record a local write: bumps the version, stamps `now`.
  /// Returns the new version.
  std::uint64_t write(ObjectId id, Bytes value, TimePoint now);

  /// Replace an object's spec in place (runtime QoS renegotiation keeps
  /// the renegotiated constraint here so it survives failover — promote()
  /// rebuilds admission from store specs).  Value/version/timestamps are
  /// untouched.  Returns false if the object is unknown.
  bool update_spec(ObjectId id, const ObjectSpec& spec);

  /// Apply a remote update (backup side).  Ignored (returns false) if
  /// `version` is not newer than what is held.
  bool apply(ObjectId id, std::uint64_t version, TimePoint origin_ts, Bytes value,
             TimePoint now);

  [[nodiscard]] const ObjectState& get(ObjectId id) const;
  [[nodiscard]] std::optional<ObjectState> find(ObjectId id) const;

  /// Iterate deterministically (ascending id).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, state] : objects_) fn(state);
  }

  [[nodiscard]] std::vector<ObjectId> ids() const;

  /// Crash recovery: install a fully-formed state (spec, value, version and
  /// both timestamps) exactly as the durability layer replayed it.
  /// Overwrites any existing entry for the same id.
  void restore(const ObjectState& state) { objects_[state.spec.id] = state; }

 private:
  std::map<ObjectId, ObjectState> objects_;
};

}  // namespace rtpb::core
