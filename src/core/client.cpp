#include "core/client.hpp"

#include "util/log.hpp"

namespace rtpb::core {

ClientApp::ClientApp(sim::Simulator& sim, ReplicaServer& home, Rng rng, bool active)
    : sim_(sim), home_(home), rng_(rng), active_(active) {}

AdmissionResult ClientApp::add_object(const ObjectSpec& spec) {
  AdmissionResult result = home_.register_object(spec);
  if (result.ok()) {
    specs_.push_back(spec);
    if (active_) start_sensing(spec);
  }
  return result;
}

AdmissionStatus ClientApp::add_constraint(const InterObjectConstraint& c) {
  return home_.add_constraint(c);
}

void ClientApp::start_sensing(const ObjectSpec& spec) {
  RTPB_ASSERT(!tasks_.contains(spec.id));
  sched::TaskSpec task;
  task.name = "sense-" + std::to_string(spec.id);
  task.period = spec.client_period;
  task.wcet = spec.client_exec;
  const ObjectSpec captured = spec;
  tasks_[spec.id] = home_.cpu().add_task(task, [this, captured](const sched::JobInfo& info) {
    ++writes_issued_;
    home_.local_write(captured.id, sense_value(captured), info);
  });
}

Bytes ClientApp::sense_value(const ObjectSpec& spec) {
  Bytes value(spec.size_bytes);
  for (auto& b : value) b = static_cast<std::uint8_t>(rng_.uniform(0, 255));
  return value;
}

void ClientApp::activate() {
  if (active_) return;
  active_ = true;
  // Up-call: the promoted server's store carries every replicated spec.
  home_.store().for_each([this](const ObjectState& state) {
    if (!tasks_.contains(state.spec.id)) start_sensing(state.spec);
  });
  RTPB_INFO("client", "client app activated with %zu sensing tasks", tasks_.size());
}

void ClientApp::deactivate() {
  if (!active_) return;
  active_ = false;
  for (auto& [id, task] : tasks_) home_.cpu().remove_task(task);
  tasks_.clear();
}

}  // namespace rtpb::core
