// Failure detection (paper §4.4): both the primary and the backup run a
// "ping thread" that sends periodic PINGs to the other server and expects
// acknowledgments.  A ping that goes unanswered past the timeout counts as
// a miss; enough consecutive misses and the peer is declared dead.  Any
// traffic from the peer (not just acks) resets the miss counter — an
// UPDATE stream is as good a liveness proof as a PING_ACK.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace rtpb::core {

class FailureDetector {
 public:
  struct Params {
    Duration ping_period = millis(100);
    Duration ack_timeout = millis(50);
    std::uint32_t max_misses = 3;
  };

  using SendPingFn = std::function<void(std::uint64_t seq)>;
  using PeerDeadFn = std::function<void()>;
  using RttSampleFn = std::function<void(Duration rtt)>;

  FailureDetector(sim::Simulator& sim, Params params, SendPingFn send_ping,
                  PeerDeadFn on_peer_dead);

  /// Observe the RTT of every matched ack for the most recent outstanding
  /// ping (Karn-unambiguous: pings are never retransmitted, and older
  /// in-flight seqs have no stored send time).  Adaptive-timeout mode
  /// feeds these into the Jacobson estimator.
  void set_rtt_callback(RttSampleFn fn) { on_rtt_ = std::move(fn); }

  /// Adjust the ack timeout at runtime (adaptive mode: SRTT + 4·RTTVAR).
  /// Clamped to (0, ping_period] to preserve the one-outstanding-ping
  /// invariant.
  void set_ack_timeout(Duration t);
  [[nodiscard]] Duration ack_timeout() const { return params_.ack_timeout; }

  void start();
  void stop();
  [[nodiscard]] bool running() const { return timer_.running(); }

  /// The peer answered ping `seq`.  Only an ack matching an outstanding
  /// ping (sent, and not already consumed) counts — duplicated or stale
  /// acks replayed by the network must not keep a dead peer "alive".
  void on_ping_ack(std::uint64_t seq);
  /// Any other message arrived from the peer (counts as liveness).
  void note_traffic();

  [[nodiscard]] bool peer_declared_dead() const { return peer_dead_; }
  [[nodiscard]] std::uint32_t consecutive_misses() const { return misses_; }
  [[nodiscard]] std::uint64_t pings_sent() const { return pings_sent_; }
  [[nodiscard]] std::uint64_t stale_acks() const { return stale_acks_; }

 private:
  void send_ping();
  void on_timeout(std::uint64_t seq, TimePoint sent_at);

  sim::Simulator& sim_;
  Params params_;
  SendPingFn send_ping_;
  PeerDeadFn on_peer_dead_;
  RttSampleFn on_rtt_;
  sim::PeriodicTimer timer_;
  sim::EventHandle timeout_event_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t outstanding_seq_ = 0;    ///< most recent ping, for RTT timing
  TimePoint outstanding_sent_at_{};
  std::uint64_t last_acked_seq_ = 0;
  std::uint64_t pings_sent_ = 0;
  std::uint64_t stale_acks_ = 0;
  TimePoint last_traffic_{};
  std::uint32_t misses_ = 0;
  bool peer_dead_ = false;
};

}  // namespace rtpb::core
