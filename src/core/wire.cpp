#include "core/wire.hpp"

namespace rtpb::core::wire {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kUpdate: return "UPDATE";
    case MsgType::kUpdateAck: return "UPDATE_ACK";
    case MsgType::kRetransmitRequest: return "RETRANSMIT_REQ";
    case MsgType::kPing: return "PING";
    case MsgType::kPingAck: return "PING_ACK";
    case MsgType::kStateTransfer: return "STATE_TRANSFER";
    case MsgType::kStateTransferAck: return "STATE_TRANSFER_ACK";
    case MsgType::kActivePrepare: return "ACTIVE_PREPARE";
    case MsgType::kActiveAck: return "ACTIVE_ACK";
    case MsgType::kUpdateBatch: return "UPDATE_BATCH";
    case MsgType::kConstraintDowngrade: return "CONSTRAINT_DOWNGRADE";
    case MsgType::kConstraintRestore: return "CONSTRAINT_RESTORE";
    case MsgType::kFrontier: return "FRONTIER";
    case MsgType::kResyncRequest: return "RESYNC_REQUEST";
    case MsgType::kStateDelta: return "STATE_DELTA";
  }
  return "?";
}

namespace {

// Field-size building blocks for the exact-reserve computations.
constexpr std::size_t kTag = 1;
constexpr std::size_t kU8 = 1;
constexpr std::size_t kU32 = 4;
constexpr std::size_t kU64 = 8;
constexpr std::size_t kLenPrefix = 4;  ///< u32 length prefix of bytes()/string()

std::size_t encoded_size(const ObjectSpec& s) {
  // id + name (prefixed) + size_bytes + 5 durations.
  return kU32 + (kLenPrefix + s.name.size()) + kU32 + 5 * kU64;
}

std::size_t encoded_size(const StateEntry& e) {
  return encoded_size(e.spec) + kU64 /*period*/ + kU64 /*version*/ + kU64 /*timestamp*/ +
         (kLenPrefix + e.value.size());
}

void encode_spec(ByteWriter& w, const ObjectSpec& s) {
  w.u32(s.id);
  w.string(s.name);
  w.u32(s.size_bytes);
  w.duration(s.client_period);
  w.duration(s.client_exec);
  w.duration(s.update_exec);
  w.duration(s.delta_primary);
  w.duration(s.delta_backup);
}

ObjectSpec decode_spec(ByteReader& r) {
  ObjectSpec s;
  s.id = r.u32();
  s.name = r.string();
  s.size_bytes = r.u32();
  s.client_period = r.duration();
  s.client_exec = r.duration();
  s.update_exec = r.duration();
  s.delta_primary = r.duration();
  s.delta_backup = r.duration();
  return s;
}

}  // namespace

std::size_t encoded_size(const Update& m) {
  return kTag + kU32 /*object*/ + kU64 /*version*/ + kU64 /*timestamp*/ + kU8 /*retx*/ +
         (kLenPrefix + m.value.size()) + kU64 /*epoch*/;
}

std::size_t encoded_size(const UpdateBatch& m) {
  std::size_t total = kTag + kU32 /*entry count*/ + kU64 /*epoch*/;
  for (const auto& e : m.entries) {
    total += kU32 /*object*/ + kU64 /*version*/ + kU64 /*timestamp*/ +
             (kLenPrefix + e.value.size());
  }
  return total;
}

std::size_t encoded_size(const StateTransfer& m) {
  std::size_t total = kTag + kU64 /*transfer id*/ + kU32 /*entry count*/ +
                      kU32 /*constraint count*/ + kU64 /*epoch*/;
  for (const auto& e : m.entries) total += encoded_size(e);
  total += m.constraints.size() * (kU32 + kU32 + kU64);
  return total;
}

std::size_t encoded_size(const StateDelta& m) {
  std::size_t total = kTag + kU64 /*transfer id*/ + kU32 /*entry count*/ +
                      kU32 /*constraint count*/ + kU64 /*epoch*/;
  for (const auto& e : m.entries) total += encoded_size(e);
  total += m.constraints.size() * (kU32 + kU32 + kU64);
  return total;
}

std::size_t encoded_size(const ActivePrepare& m) {
  return kTag + kU64 /*sequence*/ + kU32 /*object*/ + kU64 /*timestamp*/ +
         (kLenPrefix + m.value.size());
}

Bytes encode(const Update& m) {
  ByteWriter w(encoded_size(m));
  w.u8(static_cast<std::uint8_t>(MsgType::kUpdate));
  w.u32(m.object);
  w.u64(m.version);
  w.timepoint(m.timestamp);
  w.u8(m.retransmission ? 1 : 0);
  w.bytes(m.value);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const UpdateBatch& m) {
  ByteWriter w(encoded_size(m));
  w.u8(static_cast<std::uint8_t>(MsgType::kUpdateBatch));
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    w.u32(e.object);
    w.u64(e.version);
    w.timepoint(e.timestamp);
    w.bytes(e.value);
  }
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const UpdateAck& m) {
  ByteWriter w(kTag + kU32 + kU64 + kU64);
  w.u8(static_cast<std::uint8_t>(MsgType::kUpdateAck));
  w.u32(m.object);
  w.u64(m.version);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const RetransmitRequest& m) {
  ByteWriter w(kTag + kU32 + kU64 + kU64);
  w.u8(static_cast<std::uint8_t>(MsgType::kRetransmitRequest));
  w.u32(m.object);
  w.u64(m.have_version);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const Ping& m) {
  ByteWriter w(kTag + kU64 + kU64);
  w.u8(static_cast<std::uint8_t>(MsgType::kPing));
  w.u64(m.seq);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const PingAck& m) {
  ByteWriter w(kTag + kU64 + kU64);
  w.u8(static_cast<std::uint8_t>(MsgType::kPingAck));
  w.u64(m.seq);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const StateTransfer& m) {
  ByteWriter w(encoded_size(m));
  w.u8(static_cast<std::uint8_t>(MsgType::kStateTransfer));
  w.u64(m.transfer_id);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    encode_spec(w, e.spec);
    w.duration(e.update_period);
    w.u64(e.version);
    w.timepoint(e.timestamp);
    w.bytes(e.value);
  }
  w.u32(static_cast<std::uint32_t>(m.constraints.size()));
  for (const auto& c : m.constraints) {
    w.u32(c.first);
    w.u32(c.second);
    w.duration(c.delta);
  }
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const StateTransferAck& m) {
  ByteWriter w(kTag + kU64 + kU64);
  w.u8(static_cast<std::uint8_t>(MsgType::kStateTransferAck));
  w.u64(m.transfer_id);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const ConstraintDowngrade& m) {
  ByteWriter w(kTag + kU32 + 3 * kU64 /*durations*/ + kU64 /*qos_seq*/ + kU64 /*epoch*/);
  w.u8(static_cast<std::uint8_t>(MsgType::kConstraintDowngrade));
  w.u32(m.object);
  w.duration(m.delta_primary);
  w.duration(m.delta_backup);
  w.duration(m.update_period);
  w.u64(m.qos_seq);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const ConstraintRestore& m) {
  ByteWriter w(kTag + kU32 + 2 * kU64 /*durations*/ + kU64 /*qos_seq*/ + kU64 /*epoch*/);
  w.u8(static_cast<std::uint8_t>(MsgType::kConstraintRestore));
  w.u32(m.object);
  w.duration(m.delta_backup);
  w.duration(m.update_period);
  w.u64(m.qos_seq);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const Frontier& m) {
  ByteWriter w(kTag + kU32 + kU64 /*stable_ts*/ + kU64 /*epoch*/);
  w.u8(static_cast<std::uint8_t>(MsgType::kFrontier));
  w.u32(m.shard);
  w.timepoint(m.stable_ts);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const ResyncRequest& m) {
  ByteWriter w(kTag + kU32 + m.have.size() * (kU32 + kU64 + kU64) + kU64 /*epoch*/);
  w.u8(static_cast<std::uint8_t>(MsgType::kResyncRequest));
  w.u32(static_cast<std::uint32_t>(m.have.size()));
  for (const auto& e : m.have) {
    w.u32(e.object);
    w.u64(e.version);
    w.u64(e.qos_seq);
  }
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const StateDelta& m) {
  ByteWriter w(encoded_size(m));
  w.u8(static_cast<std::uint8_t>(MsgType::kStateDelta));
  w.u64(m.transfer_id);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    encode_spec(w, e.spec);
    w.duration(e.update_period);
    w.u64(e.version);
    w.timepoint(e.timestamp);
    w.bytes(e.value);
  }
  w.u32(static_cast<std::uint32_t>(m.constraints.size()));
  for (const auto& c : m.constraints) {
    w.u32(c.first);
    w.u32(c.second);
    w.duration(c.delta);
  }
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const ActivePrepare& m) {
  ByteWriter w(encoded_size(m));
  w.u8(static_cast<std::uint8_t>(MsgType::kActivePrepare));
  w.u64(m.sequence);
  w.u32(m.object);
  w.timepoint(m.timestamp);
  w.bytes(m.value);
  return std::move(w).take();
}

Bytes encode(const ActiveAck& m) {
  ByteWriter w(kTag + kU64);
  w.u8(static_cast<std::uint8_t>(MsgType::kActiveAck));
  w.u64(m.sequence);
  return std::move(w).take();
}

std::optional<AnyMessage> decode(std::span<const std::uint8_t> data) {
  if (data.empty()) return std::nullopt;
  ByteReader r(data);
  AnyMessage out;
  const auto raw_type = r.u8();
  out.type = static_cast<MsgType>(raw_type);
  switch (out.type) {
    case MsgType::kUpdate: {
      Update m;
      m.object = r.u32();
      m.version = r.u64();
      m.timestamp = r.timepoint();
      m.retransmission = r.u8() != 0;
      m.value = r.bytes();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.update = std::move(m);
      return out;
    }
    case MsgType::kUpdateBatch: {
      UpdateBatch m;
      const std::uint32_t n = r.u32();
      // Every entry takes at least 24 bytes (object + version + timestamp
      // + empty value prefix); a count that cannot fit the remaining
      // buffer is malformed — reject before reserving anything.
      constexpr std::size_t kMinEntry = kU32 + kU64 + kU64 + kLenPrefix;
      if (!r.ok() || static_cast<std::size_t>(n) * kMinEntry > r.remaining()) {
        return std::nullopt;
      }
      m.entries.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        UpdateBatchEntry e;
        e.object = r.u32();
        e.version = r.u64();
        e.timestamp = r.timepoint();
        e.value = r.bytes();
        m.entries.push_back(std::move(e));
      }
      m.epoch = r.u64();
      // A truncated entry list, an entry count that disagrees with the
      // payload, or trailing bytes all fail here.
      if (!r.ok() || !r.at_end() || m.entries.size() != n) return std::nullopt;
      out.update_batch = std::move(m);
      return out;
    }
    case MsgType::kUpdateAck: {
      UpdateAck m;
      m.object = r.u32();
      m.version = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.update_ack = m;
      return out;
    }
    case MsgType::kRetransmitRequest: {
      RetransmitRequest m;
      m.object = r.u32();
      m.have_version = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.retransmit = m;
      return out;
    }
    case MsgType::kPing: {
      Ping m;
      m.seq = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.ping = m;
      return out;
    }
    case MsgType::kPingAck: {
      PingAck m;
      m.seq = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.ping_ack = m;
      return out;
    }
    case MsgType::kStateTransfer: {
      StateTransfer m;
      m.transfer_id = r.u64();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        StateEntry e;
        e.spec = decode_spec(r);
        e.update_period = r.duration();
        e.version = r.u64();
        e.timestamp = r.timepoint();
        e.value = r.bytes();
        m.entries.push_back(std::move(e));
      }
      const std::uint32_t nc = r.u32();
      for (std::uint32_t i = 0; i < nc && r.ok(); ++i) {
        InterObjectConstraint c;
        c.first = r.u32();
        c.second = r.u32();
        c.delta = r.duration();
        m.constraints.push_back(c);
      }
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.state_transfer = std::move(m);
      return out;
    }
    case MsgType::kStateTransferAck: {
      StateTransferAck m;
      m.transfer_id = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.state_transfer_ack = m;
      return out;
    }
    case MsgType::kConstraintDowngrade: {
      ConstraintDowngrade m;
      m.object = r.u32();
      m.delta_primary = r.duration();
      m.delta_backup = r.duration();
      m.update_period = r.duration();
      m.qos_seq = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.constraint_downgrade = m;
      return out;
    }
    case MsgType::kConstraintRestore: {
      ConstraintRestore m;
      m.object = r.u32();
      m.delta_backup = r.duration();
      m.update_period = r.duration();
      m.qos_seq = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.constraint_restore = m;
      return out;
    }
    case MsgType::kFrontier: {
      Frontier m;
      m.shard = r.u32();
      m.stable_ts = r.timepoint();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.frontier = m;
      return out;
    }
    case MsgType::kResyncRequest: {
      ResyncRequest m;
      const std::uint32_t n = r.u32();
      // 20 bytes per (object, version, qos_seq) triple; reject forged
      // counts before the reserve.
      constexpr std::size_t kMinEntry = kU32 + kU64 + kU64;
      if (!r.ok() || static_cast<std::size_t>(n) * kMinEntry > r.remaining()) {
        return std::nullopt;
      }
      m.have.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        ResyncEntry e;
        e.object = r.u32();
        e.version = r.u64();
        e.qos_seq = r.u64();
        m.have.push_back(e);
      }
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end() || m.have.size() != n) return std::nullopt;
      out.resync_request = std::move(m);
      return out;
    }
    case MsgType::kStateDelta: {
      StateDelta m;
      m.transfer_id = r.u64();
      const std::uint32_t n = r.u32();
      // Every entry carries at least a minimal spec (52 bytes) plus
      // period/version/timestamp and an empty value prefix.
      constexpr std::size_t kMinEntry = (kU32 + kLenPrefix + kU32 + 5 * kU64) + 3 * kU64 +
                                        kLenPrefix;
      if (!r.ok() || static_cast<std::size_t>(n) * kMinEntry > r.remaining()) {
        return std::nullopt;
      }
      m.entries.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        StateEntry e;
        e.spec = decode_spec(r);
        e.update_period = r.duration();
        e.version = r.u64();
        e.timestamp = r.timepoint();
        e.value = r.bytes();
        m.entries.push_back(std::move(e));
      }
      const std::uint32_t nc = r.u32();
      constexpr std::size_t kMinConstraint = kU32 + kU32 + kU64;
      if (!r.ok() || static_cast<std::size_t>(nc) * kMinConstraint > r.remaining()) {
        return std::nullopt;
      }
      for (std::uint32_t i = 0; i < nc && r.ok(); ++i) {
        InterObjectConstraint c;
        c.first = r.u32();
        c.second = r.u32();
        c.delta = r.duration();
        m.constraints.push_back(c);
      }
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end() || m.entries.size() != n) return std::nullopt;
      out.state_delta = std::move(m);
      return out;
    }
    case MsgType::kActivePrepare: {
      ActivePrepare m;
      m.sequence = r.u64();
      m.object = r.u32();
      m.timestamp = r.timepoint();
      m.value = r.bytes();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.active_prepare = std::move(m);
      return out;
    }
    case MsgType::kActiveAck: {
      ActiveAck m;
      m.sequence = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.active_ack = m;
      return out;
    }
  }
  return std::nullopt;
}

std::uint64_t epoch_of(const AnyMessage& m) {
  // Every per-type optional is checked before the dereference: a
  // hand-constructed or partially-populated AnyMessage (sabotage and fuzz
  // tests build these) must yield the epoch-0 bootstrap wildcard, not UB.
  switch (m.type) {
    case MsgType::kUpdate: return m.update ? m.update->epoch : 0;
    case MsgType::kUpdateBatch: return m.update_batch ? m.update_batch->epoch : 0;
    case MsgType::kUpdateAck: return m.update_ack ? m.update_ack->epoch : 0;
    case MsgType::kRetransmitRequest: return m.retransmit ? m.retransmit->epoch : 0;
    case MsgType::kPing: return m.ping ? m.ping->epoch : 0;
    case MsgType::kPingAck: return m.ping_ack ? m.ping_ack->epoch : 0;
    case MsgType::kStateTransfer: return m.state_transfer ? m.state_transfer->epoch : 0;
    case MsgType::kStateTransferAck:
      return m.state_transfer_ack ? m.state_transfer_ack->epoch : 0;
    case MsgType::kConstraintDowngrade:
      return m.constraint_downgrade ? m.constraint_downgrade->epoch : 0;
    case MsgType::kConstraintRestore:
      return m.constraint_restore ? m.constraint_restore->epoch : 0;
    case MsgType::kFrontier:
      // Cross-GROUP traffic: the carried epoch belongs to another
      // primary-backup group and must never fence here.
      return 0;
    case MsgType::kResyncRequest:
      // Always the bootstrap wildcard — a rejoiner's recovered epoch may
      // predate a failover it slept through (see the struct comment).
      return 0;
    case MsgType::kStateDelta: return m.state_delta ? m.state_delta->epoch : 0;
    case MsgType::kActivePrepare:
    case MsgType::kActiveAck: return 0;
  }
  return 0;
}

}  // namespace rtpb::core::wire
