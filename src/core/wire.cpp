#include "core/wire.hpp"

namespace rtpb::core::wire {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kUpdate: return "UPDATE";
    case MsgType::kUpdateAck: return "UPDATE_ACK";
    case MsgType::kRetransmitRequest: return "RETRANSMIT_REQ";
    case MsgType::kPing: return "PING";
    case MsgType::kPingAck: return "PING_ACK";
    case MsgType::kStateTransfer: return "STATE_TRANSFER";
    case MsgType::kStateTransferAck: return "STATE_TRANSFER_ACK";
    case MsgType::kActivePrepare: return "ACTIVE_PREPARE";
    case MsgType::kActiveAck: return "ACTIVE_ACK";
  }
  return "?";
}

namespace {

void encode_spec(ByteWriter& w, const ObjectSpec& s) {
  w.u32(s.id);
  w.string(s.name);
  w.u32(s.size_bytes);
  w.duration(s.client_period);
  w.duration(s.client_exec);
  w.duration(s.update_exec);
  w.duration(s.delta_primary);
  w.duration(s.delta_backup);
}

ObjectSpec decode_spec(ByteReader& r) {
  ObjectSpec s;
  s.id = r.u32();
  s.name = r.string();
  s.size_bytes = r.u32();
  s.client_period = r.duration();
  s.client_exec = r.duration();
  s.update_exec = r.duration();
  s.delta_primary = r.duration();
  s.delta_backup = r.duration();
  return s;
}

}  // namespace

Bytes encode(const Update& m) {
  ByteWriter w(64 + m.value.size());
  w.u8(static_cast<std::uint8_t>(MsgType::kUpdate));
  w.u32(m.object);
  w.u64(m.version);
  w.timepoint(m.timestamp);
  w.u8(m.retransmission ? 1 : 0);
  w.bytes(m.value);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const UpdateAck& m) {
  ByteWriter w(24);
  w.u8(static_cast<std::uint8_t>(MsgType::kUpdateAck));
  w.u32(m.object);
  w.u64(m.version);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const RetransmitRequest& m) {
  ByteWriter w(24);
  w.u8(static_cast<std::uint8_t>(MsgType::kRetransmitRequest));
  w.u32(m.object);
  w.u64(m.have_version);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const Ping& m) {
  ByteWriter w(24);
  w.u8(static_cast<std::uint8_t>(MsgType::kPing));
  w.u64(m.seq);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const PingAck& m) {
  ByteWriter w(24);
  w.u8(static_cast<std::uint8_t>(MsgType::kPingAck));
  w.u64(m.seq);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const StateTransfer& m) {
  ByteWriter w(256);
  w.u8(static_cast<std::uint8_t>(MsgType::kStateTransfer));
  w.u64(m.transfer_id);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    encode_spec(w, e.spec);
    w.duration(e.update_period);
    w.u64(e.version);
    w.timepoint(e.timestamp);
    w.bytes(e.value);
  }
  w.u32(static_cast<std::uint32_t>(m.constraints.size()));
  for (const auto& c : m.constraints) {
    w.u32(c.first);
    w.u32(c.second);
    w.duration(c.delta);
  }
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const StateTransferAck& m) {
  ByteWriter w(24);
  w.u8(static_cast<std::uint8_t>(MsgType::kStateTransferAck));
  w.u64(m.transfer_id);
  w.u64(m.epoch);
  return std::move(w).take();
}

Bytes encode(const ActivePrepare& m) {
  ByteWriter w(48 + m.value.size());
  w.u8(static_cast<std::uint8_t>(MsgType::kActivePrepare));
  w.u64(m.sequence);
  w.u32(m.object);
  w.timepoint(m.timestamp);
  w.bytes(m.value);
  return std::move(w).take();
}

Bytes encode(const ActiveAck& m) {
  ByteWriter w(16);
  w.u8(static_cast<std::uint8_t>(MsgType::kActiveAck));
  w.u64(m.sequence);
  return std::move(w).take();
}

std::optional<AnyMessage> decode(std::span<const std::uint8_t> data) {
  if (data.empty()) return std::nullopt;
  ByteReader r(data);
  AnyMessage out;
  const auto raw_type = r.u8();
  out.type = static_cast<MsgType>(raw_type);
  switch (out.type) {
    case MsgType::kUpdate: {
      Update m;
      m.object = r.u32();
      m.version = r.u64();
      m.timestamp = r.timepoint();
      m.retransmission = r.u8() != 0;
      m.value = r.bytes();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.update = std::move(m);
      return out;
    }
    case MsgType::kUpdateAck: {
      UpdateAck m;
      m.object = r.u32();
      m.version = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.update_ack = m;
      return out;
    }
    case MsgType::kRetransmitRequest: {
      RetransmitRequest m;
      m.object = r.u32();
      m.have_version = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.retransmit = m;
      return out;
    }
    case MsgType::kPing: {
      Ping m;
      m.seq = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.ping = m;
      return out;
    }
    case MsgType::kPingAck: {
      PingAck m;
      m.seq = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.ping_ack = m;
      return out;
    }
    case MsgType::kStateTransfer: {
      StateTransfer m;
      m.transfer_id = r.u64();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        StateEntry e;
        e.spec = decode_spec(r);
        e.update_period = r.duration();
        e.version = r.u64();
        e.timestamp = r.timepoint();
        e.value = r.bytes();
        m.entries.push_back(std::move(e));
      }
      const std::uint32_t nc = r.u32();
      for (std::uint32_t i = 0; i < nc && r.ok(); ++i) {
        InterObjectConstraint c;
        c.first = r.u32();
        c.second = r.u32();
        c.delta = r.duration();
        m.constraints.push_back(c);
      }
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.state_transfer = std::move(m);
      return out;
    }
    case MsgType::kStateTransferAck: {
      StateTransferAck m;
      m.transfer_id = r.u64();
      m.epoch = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.state_transfer_ack = m;
      return out;
    }
    case MsgType::kActivePrepare: {
      ActivePrepare m;
      m.sequence = r.u64();
      m.object = r.u32();
      m.timestamp = r.timepoint();
      m.value = r.bytes();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.active_prepare = std::move(m);
      return out;
    }
    case MsgType::kActiveAck: {
      ActiveAck m;
      m.sequence = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      out.active_ack = m;
      return out;
    }
  }
  return std::nullopt;
}

std::uint64_t epoch_of(const AnyMessage& m) {
  switch (m.type) {
    case MsgType::kUpdate: return m.update->epoch;
    case MsgType::kUpdateAck: return m.update_ack->epoch;
    case MsgType::kRetransmitRequest: return m.retransmit->epoch;
    case MsgType::kPing: return m.ping->epoch;
    case MsgType::kPingAck: return m.ping_ack->epoch;
    case MsgType::kStateTransfer: return m.state_transfer->epoch;
    case MsgType::kStateTransferAck: return m.state_transfer_ack->epoch;
    case MsgType::kActivePrepare:
    case MsgType::kActiveAck: return 0;
  }
  return 0;
}

}  // namespace rtpb::core::wire
