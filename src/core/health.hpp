// Live health feed: each node periodically emits a one-line JSONL health
// snapshot — role, epoch, peer ack-lag, RTO, send-queue depth, degradation
// state and (on the acting primary) per-object SLO margins — so an
// operator, or tools/rtpb_top, can watch the service instead of autopsying
// it.
//
// The feed is a pure *reader*: it draws no randomness and mutates nothing,
// and its periodic timer carries the observer event tag, so trace digests
// are byte-identical with the feed on or off.  (Unlike the flight recorder
// and SLO monitor it does schedule events, so raw fired-event counts
// differ — which is why it is a separate opt-in from `--telemetry`.)
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/types.hpp"
#include "sim/simulator.hpp"

namespace rtpb::core {

class RtpbService;

class HealthFeed {
 public:
  /// `objects` lists the admitted ObjectIds whose SLO margins the acting
  /// primary's snapshot reports; `out` must outlive the feed.
  HealthFeed(RtpbService& service, std::ostream& out, std::vector<ObjectId> objects,
             Duration period = millis(100));

  HealthFeed(const HealthFeed&) = delete;
  HealthFeed& operator=(const HealthFeed&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t snapshots() const { return snapshots_; }

 private:
  void emit();

  RtpbService& service_;
  std::ostream& out_;
  std::vector<ObjectId> objects_;
  sim::PeriodicTimer timer_;
  std::uint64_t snapshots_ = 0;
};

}  // namespace rtpb::core
