#include "core/object_store.hpp"

#include "util/assert.hpp"

namespace rtpb::core {

bool ObjectStore::insert(const ObjectSpec& spec) {
  RTPB_EXPECTS(spec.id != kInvalidObject);
  ObjectState state;
  state.spec = spec;
  return objects_.emplace(spec.id, std::move(state)).second;
}

bool ObjectStore::erase(ObjectId id) { return objects_.erase(id) > 0; }

std::uint64_t ObjectStore::write(ObjectId id, Bytes value, TimePoint now) {
  auto it = objects_.find(id);
  RTPB_EXPECTS(it != objects_.end());
  ObjectState& s = it->second;
  s.value = std::move(value);
  ++s.version;
  s.timestamp = now;
  s.origin_timestamp = now;
  return s.version;
}

bool ObjectStore::update_spec(ObjectId id, const ObjectSpec& spec) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return false;
  RTPB_EXPECTS(spec.id == id);
  it->second.spec = spec;
  return true;
}

bool ObjectStore::apply(ObjectId id, std::uint64_t version, TimePoint origin_ts, Bytes value,
                        TimePoint now) {
  auto it = objects_.find(id);
  RTPB_EXPECTS(it != objects_.end());
  ObjectState& s = it->second;
  if (version <= s.version) return false;  // stale or duplicate
  s.value = std::move(value);
  s.version = version;
  s.timestamp = now;
  s.origin_timestamp = origin_ts;
  return true;
}

const ObjectState& ObjectStore::get(ObjectId id) const {
  auto it = objects_.find(id);
  RTPB_EXPECTS(it != objects_.end());
  return it->second;
}

std::optional<ObjectState> ObjectStore::find(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

std::vector<ObjectId> ObjectStore::ids() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [id, s] : objects_) out.push_back(id);
  return out;
}

}  // namespace rtpb::core
