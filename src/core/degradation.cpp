#include "core/degradation.hpp"

#include <algorithm>

#include "telemetry/slo.hpp"

namespace rtpb::core {

void RttEstimator::sample(Duration rtt) {
  if (rtt < Duration::zero()) return;
  if (samples_ == 0) {
    // RFC 6298 §2.2: first sample initialises both estimators.
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    // RTTVAR before SRTT so the deviation is measured against the old
    // smoothed value (the standard ordering).
    const Duration err = (srtt_ - rtt).abs();
    rttvar_ = rttvar_ - rttvar_ / 4 + err / 4;        // β = 1/4
    srtt_ = srtt_ - srtt_ / 8 + rtt / 8;              // α = 1/8
  }
  ++samples_;
}

void RttEstimator::reset() {
  srtt_ = Duration::zero();
  rttvar_ = Duration::zero();
  samples_ = 0;
}

Duration RttEstimator::rto() const {
  if (samples_ == 0) return Duration::zero();
  return srtt_ + rttvar_ * 4;
}

Duration BackoffPolicy::next(Rng& rng) {
  const std::uint32_t shift = std::min(level_, 16u);
  if (level_ < 16u) ++level_;
  Duration delay = params_.base * (std::int64_t{1} << shift);
  if (params_.cap > Duration::zero()) delay = std::min(delay, params_.cap);
  // Quantised jitter factor (0.01 steps) so reproducer renderings of any
  // derived schedule stay exact.
  const double j = std::clamp(params_.jitter, 0.0, 0.99);
  const double lo = 1.0 - j;
  const double hi = 1.0 + j;
  const double factor =
      static_cast<double>(rng.uniform(static_cast<std::int64_t>(lo * 100),
                                      static_cast<std::int64_t>(hi * 100))) /
      100.0;
  return delay.scaled(factor);
}

void DegradationController::on_rtt_sample(TimePoint now, Duration rtt) {
  rtt_.sample(rtt);
  if (params_.rtt_baseline > Duration::zero() &&
      rtt_.srtt() > params_.rtt_baseline.scaled(params_.rtt_factor)) {
    trigger(now, "rtt-inflation");
  }
}

void DegradationController::on_queue_depth(TimePoint now, std::size_t depth) {
  if (depth > params_.queue_depth) trigger(now, "queue-depth");
}

void DegradationController::on_missed_window(TimePoint now) {
  ++missed_windows_;
  trigger(now, "missed-window");
}

void DegradationController::trigger(TimePoint now, const char* kind) {
  triggered_ever_ = true;
  last_trigger_ = std::max(last_trigger_, now);
  ++triggers_;
  if (slo_ != nullptr) slo_->on_degradation_signal(now, kind);
}

bool DegradationController::overloaded(TimePoint now) const {
  return triggered_ever_ && now - last_trigger_ <= params_.overload_hold;
}

Duration DegradationController::calm_for(TimePoint now) const {
  if (!triggered_ever_) return Duration::max();
  return std::max(Duration::zero(), now - last_trigger_);
}

void DegradationController::reset() {
  rtt_.reset();
  triggered_ever_ = false;
  last_trigger_ = TimePoint{};
  triggers_ = 0;
  missed_windows_ = 0;
}

}  // namespace rtpb::core
