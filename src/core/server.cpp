#include "core/server.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace rtpb::core {

namespace {
std::string rtpb_track(net::NodeId n) { return "node" + std::to_string(n) + "/rtpb"; }

std::string obj_tag(ObjectId id, std::uint64_t version) {
  return "obj" + std::to_string(id) + " v" + std::to_string(version);
}

std::string peer_counter(net::NodeId peer, const char* what) {
  return "core.primary.peer.node" + std::to_string(peer) + "." + what;
}

/// Flight-recorder hook: one enabled-branch when the recorder is off, one
/// O(1) ring write when on.  `label` must be a string literal.
void flight(sim::Simulator& sim, telemetry::FlightKind kind, std::uint32_t node,
            std::uint64_t object = 0, std::uint64_t version = 0, std::uint64_t epoch = 0,
            std::uint64_t span = 0, std::int64_t arg = 0, const char* label = nullptr) {
  telemetry::FlightRecorder& fr = sim.telemetry().flight_recorder();
  if (!fr.enabled()) return;
  telemetry::FlightRecord r;
  r.at = sim.now();
  r.span = span;
  r.object = object;
  r.version = version;
  r.epoch = epoch;
  r.arg = arg;
  r.label = label;
  r.node = node;
  r.kind = kind;
  fr.record(r);
}
}  // namespace

ReplicaServer::ReplicaServer(sim::Simulator& sim, net::Network& network, NameService& names,
                             ServiceConfig config, Metrics& metrics, Role role,
                             std::string service_name)
    : sim_(sim),
      network_(network),
      names_(names),
      config_(config),
      metrics_(metrics),
      role_(role),
      service_name_(std::move(service_name)),
      stack_(network),
      cpu_(sim, config.cpu_policy, std::string(role_name(role)) + "-cpu"),
      rng_(sim.rng().fork()) {
  // The initial primary is epoch 1; backups start at 0 ("unknown") and
  // learn the cluster epoch from the first accepted message.  Epoch-0
  // traffic is never fenced, so a fresh standby can bootstrap.
  if (role_ == Role::kPrimary) epoch_ = 1;
  transfer_backoff_.emplace(BackoffPolicy::Params{
      config_.ping_period * 2, config_.ping_period * 32, 0.25});
  if (config_.enable_fragmentation) {
    frag_ = std::make_unique<xkernel::FragLite>(sim, config_.fragment_payload);
    frag_->set_telemetry(&sim.telemetry(), node());
    frag_->connect_down(stack_.udp());
    frag_->set_handler([this](xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
      handle_message(msg, attrs);
    });
    stack_.udp().bind(kRtpbPort, [this](xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
      xkernel::MsgAttrs mutable_attrs = attrs;
      frag_->demux(msg, mutable_attrs);
    });
  } else {
    stack_.udp().bind(kRtpbPort, [this](xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
      handle_message(msg, attrs);
    });
  }
}

ReplicaServer::~ReplicaServer() = default;

void ReplicaServer::add_peer(net::Endpoint peer) {
  RTPB_EXPECTS(peer.node != net::kInvalidNode);
  peers_.push_back(peer);
  peer_state_[peer.node].endpoint = peer;
}

void ReplicaServer::start() {
  RTPB_EXPECTS(!started_);
  started_ = true;

  // Admission control needs the delay bound ℓ of the replication link,
  // sized for the largest update frame we may send.  The budget starts at
  // the historical 1 KiB floor and grows with each larger registration
  // (grow_frame_budget) — a hardcoded budget silently under-estimated ℓ
  // for big objects.
  Duration ell = Duration::zero();
  if (!peers_.empty()) {
    if (auto params = network_.link_params(node(), peers_.front().node)) {
      link_params_ = *params;
      ell = params->delay_bound(frame_budget_);
    }
  }
  admission_ = std::make_unique<AdmissionController>(config_, ell);

  // Overload detection baseline: a full-frame round trip with empty
  // queues is 2ℓ; the smoothed ping RTT climbing past rtt_factor × that
  // means queueing (throttled bandwidth, inflated latency) is building.
  DegradationController::Params dp;
  dp.rtt_baseline = ell > Duration::zero() ? ell * 2 : config_.ping_period / 4;
  dp.rtt_factor = config_.overload_rtt_factor;
  dp.queue_depth = config_.overload_queue_depth;
  degrade_ = std::make_unique<DegradationController>(dp);
  // Overload triggers double as SLO degradation signals (pure observer;
  // the monitor no-ops unless someone enabled it on the hub).
  degrade_->set_slo(&sim_.telemetry().slo());

  cpu_.start(sim_.now());
  if (role_ == Role::kPrimary) {
    names_.publish(service_name_, endpoint());
    arm_qos_tick();
  }
  if (!peers_.empty()) start_heartbeat();

  // Persist the boot metadata (the initial primary's epoch 1, or a
  // backup's epoch-0 placeholder) so even a replica that crashes before
  // its first write recovers a fenced identity.
  durable_log_meta();
}

void ReplicaServer::start_heartbeat() {
  RTPB_EXPECTS(!peers_.empty());
  for (const net::Endpoint peer : peers_) ensure_detector(peer);
}

void ReplicaServer::ensure_detector(net::Endpoint peer) {
  PeerState& ps = peer_state_[peer.node];
  ps.endpoint = peer;
  if (ps.detector && ps.detector->running()) return;
  // A replica recruited after start() may not have captured link
  // parameters yet — fetch them now so the derived ack timeout (and the
  // overload RTT baseline) see the real link instead of the fallback.
  if (!link_params_) {
    if (auto params = network_.link_params(node(), peer.node)) link_params_ = *params;
  }
  FailureDetector::Params params;
  params.ping_period = config_.ping_period;
  params.ack_timeout = derived_ack_timeout();
  params.max_misses = config_.ping_max_misses;
  ps.detector = std::make_unique<FailureDetector>(
      sim_, params,
      [this, peer](std::uint64_t seq) {
        send_to(peer, wire::encode(wire::Ping{seq, epoch_}));
      },
      [this, dead = peer.node] { on_peer_dead(dead); });
  ps.detector->set_rtt_callback([this](Duration rtt) { on_rtt_sample(rtt); });
  ps.detector->start();
}

Duration ReplicaServer::derived_ack_timeout() const {
  Duration t = config_.ping_ack_timeout;
  if (t <= Duration::zero()) {
    if (link_params_) {
      t = link_params_->delay_bound(frame_budget_) * 4;
    } else {
      t = config_.ping_period / 2;
    }
    t = std::max(t, millis(5));
  }
  return std::min(t, config_.ping_period);
}

void ReplicaServer::on_rtt_sample(Duration rtt) {
  if (!degrade_) return;
  degrade_->on_rtt_sample(sim_.now(), rtt);
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().gauge("core.degrade.rtt_ms").set(degrade_->rtt().srtt().millis());
    hub.registry().gauge("core.degrade.rto_ms").set(degrade_->rtt().rto().millis());
  }
  if (!config_.adaptive_timeouts) return;
  const Duration rto = degrade_->rtt().rto();
  if (rto <= Duration::zero()) return;
  const Duration t = std::clamp(rto, millis(5), config_.ping_period);
  for (auto& [n, ps] : peer_state_) {
    if (ps.detector) ps.detector->set_ack_timeout(t);
  }
}

void ReplicaServer::on_peer_dead(net::NodeId peer) {
  RTPB_INFO("rtpb", "%s@node%u: heartbeat peer node%u declared dead", role_name(role_), node(),
            peer);
  if (role_ == Role::kBackup) {
    // A backup's only peer is (its view of) the primary.
    if (successor_) {
      promote();
    } else if (hooks_.on_primary_lost) {
      hooks_.on_primary_lost();
    }
    return;
  }
  // Primary: drop just this backup from the replication set.  The erase is
  // deferred one event because we are inside the dying detector's own
  // callback.
  if (sim_.telemetry().enabled()) {
    sim_.telemetry().registry().counter(peer_counter(peer, "dead")).add();
  }
  sim_.schedule_after(Duration::zero(), [this, peer] { remove_peer(peer); });
}

void ReplicaServer::remove_peer(net::NodeId peer) {
  auto it = peer_state_.find(peer);
  if (it != peer_state_.end()) {
    if (it->second.detector) {
      it->second.detector->stop();
      retired_detectors_.push_back(std::move(it->second.detector));
    }
    peer_state_.erase(it);
  }
  peers_.erase(std::remove_if(peers_.begin(), peers_.end(),
                              [peer](const net::Endpoint& e) { return e.node == peer; }),
               peers_.end());
  for (auto t = pending_transfers_.begin(); t != pending_transfers_.end();) {
    t->second.awaiting.erase(peer);
    if (t->second.awaiting.empty()) {
      t = pending_transfers_.erase(t);
    } else {
      ++t;
    }
  }
  if (pending_transfers_.empty()) {
    transfer_retry_.cancel();
    if (transfer_backoff_) transfer_backoff_->reset();
  }
  if (peers_.empty() && role_ == Role::kPrimary) {
    // §4.4: "If the backup is dead, the primary cancels the ping messages
    // as well as update events for each registered object."  With N peers
    // this applies once the LAST backup is gone.
    for (auto& [id, task] : update_tasks_) cpu_.remove_task(task.task);
    update_tasks_.clear();
  }
}

void ReplicaServer::clear_peers() {
  for (auto& [n, ps] : peer_state_) {
    if (ps.detector) {
      ps.detector->stop();
      retired_detectors_.push_back(std::move(ps.detector));
    }
  }
  peer_state_.clear();
  peers_.clear();
}

void ReplicaServer::crash() {
  if (crashed_) return;
  // Snapshot what this replica could have acknowledged: every version its
  // in-memory store held at the instant of the crash.  Under the
  // log-before-apply discipline all of it is already durable; restart()
  // diffs the recovered image against this snapshot to feed the
  // durable-recovery oracle (recovery_lost_updates() must stay 0).
  if (storage_ != nullptr) {
    acked_at_crash_.clear();
    store_.for_each(
        [this](const ObjectState& s) { acked_at_crash_[s.spec.id] = s.version; });
  }
  crashed_ = true;
  cpu_.stop();
  for (auto& [n, ps] : peer_state_) {
    if (ps.detector) ps.detector->stop();
  }
  transfer_retry_.cancel();
  resync_retry_.cancel();
  resync_pending_ = false;
  qos_tick_.cancel();
  batch_flush_.cancel();
  staged_updates_.clear();
  for (auto& [id, w] : watchdogs_) w.timer.cancel();
  for (auto& [id, a] : ack_state_) a.timeout.cancel();
  network_.set_node_up(node(), false);
  flight(sim_, telemetry::FlightKind::kCrash, node(), 0, 0, epoch_);
  // A crash fault is one of the post-mortem triggers: dump the ring so the
  // artifact shows what led up to it (first trigger wins).
  sim_.telemetry().flight_recorder().trigger_dump(
      "crash:node" + std::to_string(node()), sim_.now());
  RTPB_INFO("rtpb", "%s@node%u crashed", role_name(role_), node());
}

// ---------------------------------------------------------------------------
// Client-facing interface.
// ---------------------------------------------------------------------------

void ReplicaServer::grow_frame_budget(std::size_t payload_bytes) {
  if (payload_bytes <= frame_budget_) return;
  frame_budget_ = payload_bytes;
  if (link_params_ && admission_) {
    const Duration ell = link_params_->delay_bound(frame_budget_);
    admission_->set_link_delay_bound(ell);
    RTPB_INFO("rtpb", "frame budget grown to %zu B; admission ℓ now %s", frame_budget_,
              ell.to_string().c_str());
  }
}

AdmissionResult ReplicaServer::register_object(const ObjectSpec& spec) {
  RTPB_EXPECTS(started_);
  RTPB_EXPECTS(role_ == Role::kPrimary);
  // Re-derive ℓ before admitting: a payload larger than the current frame
  // budget makes the replication frame — and thus the admission delay
  // bound — bigger for this and subsequent registrations.
  grow_frame_budget(spec.size_bytes);
  AdmissionResult result = admission_->admit(spec);
  if (!result.ok()) {
    RTPB_DEBUG("rtpb", "admission rejected object %u: %s", spec.id,
               admission_error_name(result.code()));
    return result;
  }
  if (!durable_log_insert(spec)) return result;  // fail-stopped
  const bool inserted = store_.insert(spec);
  RTPB_ASSERT(inserted);
  metrics_.track_object(spec.id, spec.window(), spec.client_period);

  // One periodic update-transmission task per admitted object (§4.3).
  sync_update_tasks();
  replicate_registration(spec.id);
  RTPB_INFO("rtpb", "admitted object %u (r=%s)", spec.id,
            admission_->update_period(spec.id).to_string().c_str());
  return result;
}

AdmissionStatus ReplicaServer::add_constraint(const InterObjectConstraint& c) {
  RTPB_EXPECTS(started_);
  RTPB_EXPECTS(role_ == Role::kPrimary);
  AdmissionStatus status = admission_->add_constraint(c);
  if (status.ok()) {
    replicated_constraints_.push_back(c);
    sync_update_tasks();  // constraint may have tightened periods

    // Replicate the constraint table to the backups (acked + retried like
    // a registration, with no object entries).
    if (!peers_.empty()) {
      const std::uint64_t tid = mint_transfer_id();
      PendingTransfer& pending = pending_transfers_[tid];
      for (const net::Endpoint& peer : peers_) pending.awaiting.insert(peer.node);
      wire::StateTransfer st;
      st.transfer_id = tid;
      st.constraints = replicated_constraints_;
      st.epoch = epoch_;
      xkernel::Message frame{wire::encode(st)};
      for (const net::Endpoint& peer : peers_) send_to(peer, frame);
      arm_transfer_retry();
    }
  }
  return status;
}

void ReplicaServer::local_write(ObjectId id, Bytes value, const sched::JobInfo& info) {
  // A client job already on the CPU queue can fire after a step-down
  // deposed this primary; drop the write instead of asserting.
  if (role_ != Role::kPrimary) return;
  if (!store_.contains(id)) return;  // racing a failed registration
  // Log-before-apply: the write (at the version it is about to get) is
  // durable before the in-memory store — and through it any ack a client
  // or backup could observe — sees it.
  if (storage_ != nullptr &&
      !storage_->log_write(id, store_.get(id).version + 1, info.finish, info.finish, value)) {
    fail_stop("wal-write");
    return;
  }
  store_.write(id, std::move(value), info.finish);
  metrics_.record_response(info.finish - info.release);
  metrics_.on_primary_write(id, info.finish);

  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    // Mint the causal span for this update version, back-dated with the
    // sensing job's scheduling history so the span's first hops show how
    // long the write waited for the CPU.
    const std::uint64_t version = store_.get(id).version;
    const telemetry::SpanId span = hub.begin_span(id, version, epoch_);
    hub.registry().counter("core.primary.writes").add();
    hub.registry().histogram("core.primary.write_response_ms").record(info.finish - info.release);
    const std::string track = rtpb_track(node());
    hub.record_at(info.release, span, node(), telemetry::EventKind::kInstant, track,
                  "write-release", obj_tag(id, version));
    hub.record_at(info.start, span, node(), telemetry::EventKind::kInstant, track,
                  "write-start");
    hub.record_at(info.finish, span, node(), telemetry::EventKind::kInstant, track, "write",
                  obj_tag(id, version));
  }

  // Window-consistent baseline: each write immediately queues its own
  // transmission job (coupled), instead of the decoupled periodic tasks.
  if (config_.update_scheduling == UpdateScheduling::kCoupled && !peers_.empty() &&
      cpu_.started()) {
    const Duration cost = store_.get(id).spec.update_exec;
    cpu_.submit_job("xmit-now-" + std::to_string(id), cost,
                    [this, id](const sched::JobInfo& job) { send_update(id, false, &job); });
  }
  maybe_checkpoint();
}

std::optional<ObjectState> ReplicaServer::read(ObjectId id) const { return store_.find(id); }

// ---------------------------------------------------------------------------
// Update transmission (primary side).
// ---------------------------------------------------------------------------

void ReplicaServer::sync_update_tasks() {
  if (role_ != Role::kPrimary || peers_.empty()) return;
  if (config_.update_scheduling == UpdateScheduling::kCoupled) return;  // per-write sends
  for (const auto& [id, period] : admission_->update_periods()) {
    auto it = update_tasks_.find(id);
    if (it != update_tasks_.end() && it->second.period == period) continue;
    if (it != update_tasks_.end()) cpu_.remove_task(it->second.task);

    sched::TaskSpec task;
    task.name = "xmit-" + std::to_string(id);
    task.period = period;
    task.wcet = store_.contains(id) ? store_.get(id).spec.update_exec : millis(1);
    const ObjectId obj = id;
    const sched::TaskId tid = cpu_.add_task(task, [this, obj](const sched::JobInfo& job) {
      send_update(obj, /*retransmission=*/false, &job);
    });
    update_tasks_[id] = UpdateTaskState{tid, period};
  }
  // Drop tasks for objects no longer admitted.
  for (auto it = update_tasks_.begin(); it != update_tasks_.end();) {
    if (!admission_->update_periods().contains(it->first)) {
      cpu_.remove_task(it->second.task);
      it = update_tasks_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplicaServer::send_update(ObjectId id, bool retransmission, const sched::JobInfo* job,
                                const std::vector<net::Endpoint>* targets) {
  if (crashed_ || peers_.empty() || !store_.contains(id)) return;
  const ObjectState& state = store_.get(id);
  if (state.version == 0) return;  // nothing written yet

  ++updates_sent_;
  if (retransmission) ++retransmissions_;

  telemetry::Hub& hub = sim_.telemetry();
  const telemetry::SpanId span =
      hub.enabled() ? hub.span_for(id, state.version) : telemetry::kNoSpan;
  // Everything pushed synchronously below (FRAGLITE → UDPLITE → IPLITE →
  // SIMETH → the link) records against this update's span.
  telemetry::ScopedSpan span_scope(hub, span);
  if (hub.enabled()) {
    const std::string track = rtpb_track(node());
    if (job != nullptr && span != telemetry::kNoSpan) {
      hub.record_at(job->release, span, node(), telemetry::EventKind::kInstant, track,
                    "xmit-release", obj_tag(id, state.version));
      hub.record_at(job->start, span, node(), telemetry::EventKind::kInstant, track,
                    "xmit-start");
    }
    hub.registry()
        .counter(retransmission ? "core.primary.retransmissions" : "core.primary.update_sends")
        .add();
    hub.record(span, node(), telemetry::EventKind::kInstant, track,
               retransmission ? "update-retx" : "update-send", obj_tag(id, state.version));
  }
  flight(sim_, telemetry::FlightKind::kUpdateSend, node(), id, state.version, epoch_, span,
         retransmission ? 1 : 0);

  // §5 methodology: loss injected on the update stream itself (the paper's
  // "probability of message loss from the primary to the backup").  A
  // per-object override (shard-targeted chaos verbs) takes precedence;
  // bernoulli(0) draws nothing, so unused overrides leave the rng stream —
  // and with it the trace digest — untouched.
  const auto loss_it = object_loss_override_.find(id);
  const double loss_p =
      loss_it != object_loss_override_.end() ? loss_it->second : config_.update_loss_probability;
  if (rng_.bernoulli(loss_p)) {
    ++updates_loss_injected_;
    if (hub.enabled()) {
      hub.registry().counter("core.primary.loss_injected").add();
      hub.record(span, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-loss-injected", obj_tag(id, state.version));
    }
  } else if (config_.batch_updates && !retransmission && targets == nullptr) {
    // Stage for the open batch window instead of sending immediately.  The
    // staged entry is just the object id — the flush reads the store, so a
    // write landing inside the window rides out with its newest version.
    if (std::find(staged_updates_.begin(), staged_updates_.end(), id) == staged_updates_.end()) {
      staged_updates_.push_back(id);
    }
    if (!batch_flush_.pending()) {
      batch_flush_ =
          sim_.schedule_after(config_.update_batch_window, [this] { flush_staged_updates(); });
    }
  } else {
    wire::Update u;
    u.object = id;
    u.version = state.version;
    u.timestamp = state.origin_timestamp;
    u.retransmission = retransmission;
    u.value = state.value;
    u.epoch = epoch_;
    ++update_frames_sent_;
    // Encode once; each peer's copy shares the body buffer.
    xkernel::Message frame{wire::encode(u)};
    const std::vector<net::Endpoint>& dst = targets != nullptr ? *targets : peers_;
    for (const net::Endpoint& peer : dst) send_to(peer, frame);
  }

  if (config_.ack_every_update && !retransmission) arm_ack_timeout(id, state.version);
}

void ReplicaServer::flush_staged_updates() {
  if (crashed_ || role_ != Role::kPrimary || peers_.empty()) {
    staged_updates_.clear();
    return;
  }
  if (config_.degradation_enabled) shed_staged_updates();
  wire::UpdateBatch batch;
  batch.entries.reserve(staged_updates_.size());
  for (ObjectId id : staged_updates_) {
    if (!store_.contains(id)) continue;  // deregistered inside the window
    const ObjectState& state = store_.get(id);
    if (state.version == 0) continue;
    wire::UpdateBatchEntry entry;
    entry.object = id;
    entry.version = state.version;
    entry.timestamp = state.origin_timestamp;
    entry.value = state.value;
    batch.entries.push_back(std::move(entry));
  }
  staged_updates_.clear();
  if (batch.entries.empty()) return;
  batch.epoch = epoch_;
  ++update_frames_sent_;
  updates_batched_ += batch.entries.size();
  telemetry::Hub& hub = sim_.telemetry();
  // The frame carries several updates but a stack event attaches to one
  // span: the first coalesced update stands in for the frame (its span
  // threads write → udp-push → net-deliver → apply; siblings still get
  // their own apply events at the backup).
  const telemetry::SpanId span =
      hub.enabled() ? hub.span_for(batch.entries.front().object, batch.entries.front().version)
                    : telemetry::kNoSpan;
  telemetry::ScopedSpan span_scope(hub, span);
  if (hub.enabled()) {
    hub.registry().counter("core.primary.batch_frames").add();
    hub.registry().histogram("core.primary.batch_entries").record_ms(
        static_cast<double>(batch.entries.size()));
    hub.record(span, node(), telemetry::EventKind::kInstant, rtpb_track(node()), "batch-send",
               std::to_string(batch.entries.size()) + " entries");
  }
  flight(sim_, telemetry::FlightKind::kUpdateBatch, node(), batch.entries.front().object,
         batch.entries.front().version, epoch_, span,
         static_cast<std::int64_t>(batch.entries.size()));
  xkernel::Message frame{wire::encode(batch)};
  for (const net::Endpoint& peer : peers_) send_to(peer, frame);
}

void ReplicaServer::shed_staged_updates() {
  if (!degrade_ || staged_updates_.empty()) return;
  const TimePoint now = sim_.now();
  degrade_->on_queue_depth(now, staged_updates_.size());

  // Slack = time until this object's (currently admitted) window is
  // violated at the backup: window − d_i(now).  The shared Metrics holds
  // both sites' timestamps, so the primary can read d_i directly.
  std::vector<std::pair<Duration, ObjectId>> by_slack;
  by_slack.reserve(staged_updates_.size());
  for (ObjectId id : staged_updates_) {
    if (!store_.contains(id)) continue;
    const Duration window = store_.get(id).spec.window();
    const Duration slack = window - metrics_.current_distance(id);
    if (slack <= Duration::zero()) degrade_->on_missed_window(now);
    by_slack.emplace_back(slack, id);
  }
  if (!degrade_->overloaded(now)) return;  // staging order stands

  // Overloaded: ship in time-to-violation order and drop what a fresh
  // client write will supersede before its slack expires (the write lands
  // within one period, ships within another — 2 p_i of margin keeps the
  // drop safe).  The most urgent update always ships.
  std::stable_sort(by_slack.begin(), by_slack.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  telemetry::Hub& hub = sim_.telemetry();
  std::vector<ObjectId> keep;
  keep.reserve(by_slack.size());
  for (const auto& [slack, id] : by_slack) {
    const Duration period = store_.get(id).spec.client_period;
    if (!keep.empty() && slack > period * 2) {
      ++updates_shed_;
      if (hub.enabled()) {
        hub.registry().counter("core.degrade.shed").add();
        hub.record(hub.latest_span(id), node(), telemetry::EventKind::kInstant,
                   rtpb_track(node()), "update-shed",
                   "obj" + std::to_string(id) + " slack " + slack.to_string());
      }
      flight(sim_, telemetry::FlightKind::kShed, node(), id, 0, epoch_, hub.latest_span(id),
             slack.nanos() / 1'000'000);
      continue;
    }
    keep.push_back(id);
  }
  staged_updates_ = std::move(keep);
}

void ReplicaServer::arm_ack_timeout(ObjectId id, std::uint64_t version) {
  auto task_it = update_tasks_.find(id);
  const Duration period =
      task_it != update_tasks_.end() ? task_it->second.period : config_.ping_period;
  AckState& ack = ack_state_[id];
  // An armed deadline sticks: re-arming on every periodic send (one per
  // period, deadline two periods out) would postpone it forever and the
  // ack path would never retransmit while the stream flows.  The pending
  // deadline checks the version it was armed with; the next send arms a
  // fresh one, so every version eventually faces its deadline.
  if (ack.timeout.pending()) return;
  // Fixed mode: the historical period × ack_timeout_periods.  Adaptive
  // mode adds the current RTO on top of one period, so a throttled or
  // latency-inflated link stretches the deadline instead of triggering a
  // retransmission storm into an already-congested queue.
  Duration deadline = period * config_.ack_timeout_periods;
  if (config_.adaptive_timeouts && degrade_ && degrade_->rtt().has_sample()) {
    deadline = std::max(deadline, period + degrade_->rtt().rto());
  }
  ack.timeout = sim_.schedule_after(deadline, [this, id, version] {
    // Retransmit only to the peers still behind: one fast backup's ack
    // must not cancel retransmission for a backup that never received the
    // update (the old shared acked_version slot did exactly that).
    std::vector<net::Endpoint> lagging;
    for (const net::Endpoint& peer : peers_) {
      std::uint64_t acked = 0;
      if (auto ps = peer_state_.find(peer.node); ps != peer_state_.end()) {
        if (auto a = ps->second.acked.find(id); a != ps->second.acked.end()) acked = a->second;
      }
      if (acked < version) lagging.push_back(peer);
    }
    if (lagging.empty()) return;
    RTPB_DEBUG("rtpb", "update %u v%llu unacked by %zu peer(s); retransmitting", id,
               static_cast<unsigned long long>(version), lagging.size());
    send_update(id, /*retransmission=*/true, nullptr, &lagging);
    arm_ack_timeout(id, version);
  });
}

// ---------------------------------------------------------------------------
// Registration replication.
// ---------------------------------------------------------------------------

Duration ReplicaServer::effective_update_interval(ObjectId id) const {
  if (config_.update_scheduling == UpdateScheduling::kCoupled) {
    return store_.get(id).spec.client_period;
  }
  return admission_->update_period(id);
}

void ReplicaServer::replicate_registration(ObjectId id) {
  if (peers_.empty()) return;
  const std::uint64_t tid = mint_transfer_id();
  PendingTransfer& pending = pending_transfers_[tid];
  pending.ids = {id};
  for (const net::Endpoint& peer : peers_) pending.awaiting.insert(peer.node);

  wire::StateTransfer st;
  st.transfer_id = tid;
  st.entries.push_back(state_entry_for(id));
  st.constraints = replicated_constraints_;
  st.epoch = epoch_;

  xkernel::Message frame{wire::encode(st)};
  for (const net::Endpoint& peer : peers_) send_to(peer, frame);
  arm_transfer_retry();
}

Duration ReplicaServer::transfer_retry_delay() {
  if (config_.degradation_enabled && transfer_backoff_) {
    return transfer_backoff_->next(rng_);
  }
  return config_.ping_period * 2;
}

void ReplicaServer::arm_transfer_retry() {
  if (transfer_retry_.pending()) return;
  transfer_retry_ =
      sim_.schedule_after(transfer_retry_delay(), [this] { retry_pending_registrations(); });
}

void ReplicaServer::retry_pending_registrations() {
  if (crashed_ || peers_.empty() || pending_transfers_.empty()) return;
  telemetry::Hub& hub = sim_.telemetry();
  for (auto it = pending_transfers_.begin(); it != pending_transfers_.end();) {
    PendingTransfer& pending = it->second;
    ++pending.attempts;
    if (config_.transfer_retry_limit > 0 &&
        pending.attempts > config_.transfer_retry_limit) {
      // The peer never acked across the whole backoff ladder: retrying
      // forever would keep storming a link that is not delivering.  Give
      // up and report the silent peer as suspected-down — the same path a
      // heartbeat declaration takes (deferred remove_peer on a primary).
      for (const net::NodeId n : pending.awaiting) {
        ++transfer_give_ups_;
        RTPB_WARN("rtpb", "transfer %llu to node%u unacked after %u attempts; suspecting peer",
                  static_cast<unsigned long long>(it->first), n, pending.attempts - 1);
        if (hub.enabled()) hub.registry().counter("core.degrade.transfer_give_ups").add();
        on_peer_dead(n);
      }
      it = pending_transfers_.erase(it);
      continue;
    }
    if (pending.delta) {
      // Incremental-rejoin retry: re-encode the dirty set as a kStateDelta
      // with the SAME transfer id, so the receiver's per-sender reorder
      // guard treats the retry exactly like the original.
      wire::StateDelta sd;
      sd.transfer_id = it->first;
      for (ObjectId id : pending.ids) {
        if (store_.contains(id)) sd.entries.push_back(state_entry_for(id));
      }
      sd.constraints = replicated_constraints_;
      sd.epoch = epoch_;
      xkernel::Message frame{wire::encode(sd)};
      for (const net::Endpoint& peer : peers_) {
        if (pending.awaiting.contains(peer.node)) send_to(peer, frame);
      }
      ++it;
      continue;
    }
    wire::StateTransfer st;
    st.transfer_id = it->first;
    for (ObjectId id : pending.ids) {
      if (store_.contains(id)) st.entries.push_back(state_entry_for(id));
    }
    st.constraints = replicated_constraints_;
    st.epoch = epoch_;
    xkernel::Message frame{wire::encode(st)};
    // Only peers that have not acknowledged yet need the retry.
    for (const net::Endpoint& peer : peers_) {
      if (pending.awaiting.contains(peer.node)) send_to(peer, frame);
    }
    ++it;
  }
  if (pending_transfers_.empty()) {
    if (transfer_backoff_) transfer_backoff_->reset();
    return;
  }
  transfer_retry_ =
      sim_.schedule_after(transfer_retry_delay(), [this] { retry_pending_registrations(); });
  if (hub.enabled() && transfer_backoff_) {
    hub.registry().gauge("core.degrade.backoff_level")
        .set(static_cast<double>(transfer_backoff_->level()));
  }
}

// ---------------------------------------------------------------------------
// Failover.
// ---------------------------------------------------------------------------

void ReplicaServer::promote() {
  RTPB_EXPECTS(role_ == Role::kBackup);
  RTPB_EXPECTS(!crashed_);
  role_ = Role::kPrimary;
  promoted_at_ = sim_.now();
  // Mint a new incarnation: strictly above every epoch this replica has
  // seen, and above the initial primary's epoch 1 even if this backup
  // never received a single message before promoting.
  epoch_ = std::max<std::uint64_t>(epoch_, 1) + 1;
  durable_log_meta();  // the minted incarnation must survive a crash
  if (sim_.trace().enabled()) {
    sim_.trace().record(sim_.now(), sim::TraceCategory::kService, "promote",
                        "node" + std::to_string(node()) + " epoch" + std::to_string(epoch_));
  }
  {
    telemetry::Hub& hub = sim_.telemetry();
    if (hub.enabled()) {
      hub.registry().counter("core.failovers").add();
      hub.registry().gauge("core.epoch").set(static_cast<double>(epoch_));
      hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "promote", "epoch " + std::to_string(epoch_));
    }
  }
  flight(sim_, telemetry::FlightKind::kRoleChange, node(), 0, 0, epoch_, 0, /*arg=*/1,
         "promote");
  flight(sim_, telemetry::FlightKind::kEpoch, node(), 0, 0, epoch_);
  clear_peers();  // the old primary is gone
  for (auto& [id, w] : watchdogs_) w.timer.cancel();
  watchdogs_.clear();

  // Rewrite the name file to point clients at us (§4.4).
  names_.publish(service_name_, endpoint());

  // Rebuild admission state from the replicated specs so the service can
  // keep enforcing temporal constraints for new registrations.  The frame
  // budget is re-derived from the replicated payload sizes — the largest
  // replicated object bounds the frames this new primary will send.
  Duration ell = admission_ ? admission_->link_delay_bound() : Duration::zero();
  store_.for_each([this](const ObjectState& state) {
    if (state.spec.size_bytes > frame_budget_) frame_budget_ = state.spec.size_bytes;
  });
  if (link_params_) ell = link_params_->delay_bound(frame_budget_);
  admission_ = std::make_unique<AdmissionController>(config_, ell);
  store_.for_each([this](const ObjectState& state) {
    const AdmissionResult r = admission_->admit(state.spec);
    if (!r.ok()) {
      RTPB_WARN("rtpb", "object %u no longer admissible after failover: %s", state.spec.id,
                admission_error_name(r.code()));
    }
  });
  for (const auto& c : replicated_constraints_) (void)admission_->add_constraint(c);

  // QoS renegotiation state: specs in the store already reflect any
  // downgrade this replica heard about (they were re-admitted above), so
  // the loosened constraint survives the failover.  The original specs
  // were only known to the dead primary — the downgraded QoS becomes the
  // admitted one here.  Seed our seq counter above every seq we applied
  // so our own future notices are never discarded as stale.
  for (const auto& [id, seq] : qos_applied_seq_) {
    next_qos_seq_ = std::max(next_qos_seq_, seq + 1);
  }
  downgrades_.clear();
  arm_qos_tick();

  RTPB_INFO("rtpb", "backup promoted to primary at %s (epoch %llu)",
            sim_.now().to_string().c_str(), static_cast<unsigned long long>(epoch_));
  // Bring up the local (backup) client application via up-call.
  if (hooks_.on_promoted) hooks_.on_promoted();
}

void ReplicaServer::step_down(std::uint64_t new_epoch) {
  RTPB_EXPECTS(role_ == Role::kPrimary);
  ++step_downs_;
  RTPB_INFO("rtpb", "primary@node%u deposed: saw epoch %llu > own %llu; stepping down", node(),
            static_cast<unsigned long long>(new_epoch),
            static_cast<unsigned long long>(epoch_));
  if (sim_.trace().enabled()) {
    sim_.trace().record(sim_.now(), sim::TraceCategory::kService, "step-down",
                        "node" + std::to_string(node()) + " epoch" + std::to_string(new_epoch));
  }
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.epoch.step_downs").add();
    hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "step-down", "deposed by epoch " + std::to_string(new_epoch));
  }
  role_ = Role::kBackup;
  epoch_ = new_epoch;
  durable_log_meta();
  flight(sim_, telemetry::FlightKind::kRoleChange, node(), 0, 0, epoch_, 0, /*arg=*/0,
         "step-down");
  flight(sim_, telemetry::FlightKind::kEpoch, node(), 0, 0, epoch_);
  // Tear down the primary-side machinery.  The deposed replica stays up
  // as an ORPHANED backup: its store may hold a divergent suffix the new
  // primary never saw, so it must not rejoin the chain until a state
  // transfer from the new primary re-peers it.
  for (auto& [id, task] : update_tasks_) cpu_.remove_task(task.task);
  update_tasks_.clear();
  for (auto& [id, a] : ack_state_) a.timeout.cancel();
  ack_state_.clear();
  transfer_retry_.cancel();
  qos_tick_.cancel();
  downgrades_.clear();
  batch_flush_.cancel();
  staged_updates_.clear();
  pending_transfers_.clear();
  clear_peers();
  if (hooks_.on_deposed) hooks_.on_deposed();
}

void ReplicaServer::follow_new_primary(net::Endpoint new_primary) {
  RTPB_EXPECTS(role_ == Role::kBackup);
  RTPB_EXPECTS(!crashed_);
  clear_peers();
  add_peer(new_primary);
  start_heartbeat();
  RTPB_INFO("rtpb", "backup@node%u now follows primary at node%u", node(), new_primary.node);
}

// ---------------------------------------------------------------------------
// Runtime QoS renegotiation (graceful degradation).
// ---------------------------------------------------------------------------

void ReplicaServer::arm_qos_tick() {
  if (!config_.degradation_enabled) return;
  if (crashed_ || role_ != Role::kPrimary) return;
  if (qos_tick_.pending()) return;
  qos_tick_ = sim_.schedule_after(millis(10), [this] { qos_tick(); });
}

void ReplicaServer::qos_tick() {
  if (crashed_ || role_ != Role::kPrimary || !degrade_) return;
  const TimePoint now = sim_.now();

  if (!peers_.empty()) {
    // Downgrade pass: an object more than half-way through its window
    // while the system is overloaded — or nearly fully through it under
    // any conditions — is about to violate.  Renegotiate BEFORE that
    // happens so the violation-to-be is inside an announced window.
    for (const ObjectId id : store_.ids()) {
      if (downgrades_.contains(id)) continue;
      const ObjectSpec& spec = store_.get(id).spec;
      const Duration window = spec.window();
      if (window <= Duration::zero()) continue;
      const Duration dist = metrics_.current_distance(id);
      const bool imminent = dist > window.scaled(0.75);
      // An imminent violation is overload evidence in itself (the update
      // stream fell behind the window) — feed the detector so shedding
      // and hysteresis see it too.
      if (imminent) degrade_->on_missed_window(now);
      if ((degrade_->overloaded(now) && dist > window / 2) || imminent) {
        downgrade_object(id);
      }
    }
  }

  // Restore pass: original QoS comes back only after the overload has
  // been quiet for the hysteresis hold (floored at one failure-detection
  // period so restore can never flap within one detector cycle) AND the
  // backup has genuinely caught back up into the original window.
  const Duration hold = std::max(config_.degrade_restore_hold, config_.ping_period);
  for (auto it = downgrades_.begin(); it != downgrades_.end();) {
    const ObjectId id = it->first;
    const QosState& qos = it->second;
    const bool calm = !degrade_->overloaded(now) && degrade_->calm_for(now) >= hold;
    const bool aged = now - qos.since >= hold;
    const bool caught_up =
        store_.contains(id) &&
        metrics_.current_distance(id) + qos.original.client_period < qos.original.window();
    ++it;  // restore_object erases the entry
    if (calm && aged && caught_up) restore_object(id);
  }

  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().gauge("core.degrade.active_downgrades")
        .set(static_cast<double>(downgrades_.size()));
    hub.registry().gauge("core.degrade.overloaded")
        .set(degrade_->overloaded(now) ? 1.0 : 0.0);
  }
  arm_qos_tick();
}

bool ReplicaServer::downgrade_object(ObjectId id) {
  RTPB_EXPECTS(role_ == Role::kPrimary);
  if (!store_.contains(id) || downgrades_.contains(id) || !admission_) return false;
  const ObjectSpec original = store_.get(id).spec;
  const Duration original_period = admission_->update_period(id);

  // Loosen δ_iB by degrade_window_factor windows, then run the result
  // through admission (falling back to its §4.2 suggestion machinery if
  // the straight relaxation is still infeasible).  The object must leave
  // the admitted set first — suggest/admit evaluate against it.
  ObjectSpec loosened = original;
  loosened.delta_backup =
      original.delta_primary + original.window() * config_.degrade_window_factor;
  admission_->remove(id);
  AdmissionResult result = admission_->admit(loosened);
  if (!result.ok()) {
    if (auto suggestion = admission_->suggest_alternative(loosened)) {
      loosened = *suggestion;
      result = admission_->admit(loosened);
    }
  }
  if (!result.ok()) {
    // No feasible relaxation: put the original back and keep limping.
    (void)admission_->admit(original);
    sync_update_tasks();
    return false;
  }

  store_.update_spec(id, loosened);
  metrics_.track_object(id, loosened.window(), loosened.client_period);
  sync_update_tasks();

  QosState qos;
  qos.original = original;
  qos.original_period = original_period;
  qos.qos_seq = next_qos_seq_++;
  qos.since = sim_.now();
  downgrades_[id] = qos;
  qos_applied_seq_[id] = qos.qos_seq;
  qos_notice_at_[id] = sim_.now();
  ++downgrades_sent_;

  wire::ConstraintDowngrade d;
  d.object = id;
  d.delta_primary = loosened.delta_primary;
  d.delta_backup = loosened.delta_backup;
  d.update_period = admission_->update_period(id);
  d.qos_seq = qos.qos_seq;
  d.epoch = epoch_;
  xkernel::Message frame{wire::encode(d)};
  for (const net::Endpoint& peer : peers_) send_to(peer, frame);

  RTPB_INFO("rtpb", "QoS downgrade: object %u window %s -> %s (r=%s, seq %llu)", id,
            original.window().to_string().c_str(), loosened.window().to_string().c_str(),
            d.update_period.to_string().c_str(),
            static_cast<unsigned long long>(d.qos_seq));
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.degrade.downgrades").add();
    hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "qos-downgrade",
               "obj" + std::to_string(id) + " window " + loosened.window().to_string());
  }
  flight(sim_, telemetry::FlightKind::kQosDowngrade, node(), id, 0, epoch_, 0,
         loosened.window().nanos() / 1'000'000);
  if (hooks_.on_qos_changed) hooks_.on_qos_changed(id, loosened);
  return true;
}

bool ReplicaServer::restore_object(ObjectId id) {
  RTPB_EXPECTS(role_ == Role::kPrimary);
  auto it = downgrades_.find(id);
  if (it == downgrades_.end() || !store_.contains(id) || !admission_) return false;
  const ObjectSpec original = it->second.original;

  admission_->remove(id);
  const AdmissionResult result = admission_->admit(original);
  if (!result.ok()) {
    // The original no longer fits (e.g. the admitted set grew while
    // degraded): stay on the downgraded QoS rather than over-promise.
    const ObjectSpec downgraded = store_.get(id).spec;
    (void)admission_->admit(downgraded);
    sync_update_tasks();
    return false;
  }

  store_.update_spec(id, original);
  metrics_.track_object(id, original.window(), original.client_period);
  sync_update_tasks();

  const std::uint64_t seq = next_qos_seq_++;
  downgrades_.erase(it);
  qos_applied_seq_[id] = seq;
  qos_notice_at_[id] = sim_.now();
  ++restores_sent_;

  wire::ConstraintRestore rs;
  rs.object = id;
  rs.delta_backup = original.delta_backup;
  rs.update_period = admission_->update_period(id);
  rs.qos_seq = seq;
  rs.epoch = epoch_;
  xkernel::Message frame{wire::encode(rs)};
  for (const net::Endpoint& peer : peers_) send_to(peer, frame);

  RTPB_INFO("rtpb", "QoS restore: object %u window back to %s (r=%s, seq %llu)", id,
            original.window().to_string().c_str(), rs.update_period.to_string().c_str(),
            static_cast<unsigned long long>(seq));
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.degrade.restores").add();
    hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "qos-restore", "obj" + std::to_string(id));
  }
  flight(sim_, telemetry::FlightKind::kQosRestore, node(), id, 0, epoch_, 0,
         original.window().nanos() / 1'000'000);
  if (hooks_.on_qos_changed) hooks_.on_qos_changed(id, original);
  return true;
}

TimePoint ReplicaServer::qos_last_notice_at(ObjectId id) const {
  auto it = qos_notice_at_.find(id);
  return it != qos_notice_at_.end() ? it->second : TimePoint::zero();
}

void ReplicaServer::recruit_backup(net::Endpoint new_backup) {
  RTPB_EXPECTS(role_ == Role::kPrimary);
  RTPB_EXPECTS(!crashed_);
  if (std::find(peers_.begin(), peers_.end(), new_backup) == peers_.end()) {
    add_peer(new_backup);
  }

  const std::uint64_t tid = mint_transfer_id();
  std::vector<ObjectId> ids = store_.ids();
  PendingTransfer& pending = pending_transfers_[tid];
  pending.ids = ids;
  pending.awaiting.insert(new_backup.node);

  wire::StateTransfer st;
  st.transfer_id = tid;
  for (ObjectId id : ids) st.entries.push_back(state_entry_for(id));
  st.constraints = replicated_constraints_;
  st.epoch = epoch_;
  send_to(new_backup, wire::encode(st));
  arm_transfer_retry();
}

// ---------------------------------------------------------------------------
// Message handling.
// ---------------------------------------------------------------------------

void ReplicaServer::send_to(net::Endpoint to, Bytes payload) {
  send_to(to, xkernel::Message{std::move(payload)});
}

void ReplicaServer::send_to(net::Endpoint to, xkernel::Message msg) {
  if (crashed_) return;
  if (frag_) {
    xkernel::MsgAttrs attrs;
    attrs.src = endpoint();
    attrs.dst = to;
    frag_->push(msg, attrs);
  } else {
    stack_.send_message(kRtpbPort, to, std::move(msg));
  }
}

void ReplicaServer::handle_message(xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
  if (crashed_) return;
  // Non-const: batch entry values are moved out during apply.
  auto decoded = wire::decode(msg.contents());
  if (!decoded) {
    RTPB_WARN("rtpb", "undecodable RTPB message from node%u; dropped", attrs.src.node);
    return;
  }
  const net::Endpoint from = attrs.src;

  // Cross-shard frontier frames bypass epoch fencing entirely: sender and
  // receiver are primaries of DIFFERENT groups, so their epochs are
  // unrelated incarnation counters — fencing on them would both drop valid
  // frontiers and let a peer group's higher epoch depose this primary.
  // The monotone merge in handle_frontier makes stale frames harmless.
  if (decoded->type == wire::MsgType::kFrontier) {
    handle_frontier(*decoded->frontier, from);
    return;
  }

  // ---- epoch fencing ----
  // Traffic stamped with a LOWER epoch comes from a deposed primary (or a
  // not-yet-repointed backup) and is rejected outright; epoch 0 is the
  // bootstrap wildcard.  A ping still gets an answer carrying OUR epoch:
  // that ack is the depose notice a zombie primary steps down on.
  const std::uint64_t msg_epoch = wire::epoch_of(*decoded);
  if (config_.epoch_fencing && msg_epoch != 0 && msg_epoch < epoch_) {
    ++epoch_rejections_;
    telemetry::Hub& hub = sim_.telemetry();
    if (hub.enabled()) {
      hub.registry().counter("core.epoch.rejected").add();
      hub.record(hub.current_span(), node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "epoch-reject",
                 std::string(wire::msg_type_name(decoded->type)) + " epoch " +
                     std::to_string(msg_epoch) + " < " + std::to_string(epoch_));
    }
    RTPB_DEBUG("rtpb", "%s from node%u fenced: epoch %llu < %llu",
               wire::msg_type_name(decoded->type), from.node,
               static_cast<unsigned long long>(msg_epoch),
               static_cast<unsigned long long>(epoch_));
    if (decoded->type == wire::MsgType::kPing) {
      send_to(from, wire::encode(wire::PingAck{decoded->ping->seq, epoch_}));
    }
    return;
  }
  if (msg_epoch > epoch_) {
    if (role_ == Role::kBackup) {
      // Backups adopt the highest epoch seen on accepted traffic.
      epoch_ = msg_epoch;
      durable_log_meta();
    } else if (config_.epoch_fencing) {
      // A higher epoch at a primary means someone was promoted over us:
      // we were deposed without noticing.  Step down, then handle the
      // message as the backup we now are.
      step_down(msg_epoch);
    }
    // With fencing off a primary ignores the higher epoch — the historic
    // split-brain behaviour the chaos sabotage self-test relies on.
  }

  if (auto ps = peer_state_.find(from.node); ps != peer_state_.end() && ps->second.detector) {
    ps->second.detector->note_traffic();
  }

  switch (decoded->type) {
    case wire::MsgType::kUpdate:
      handle_update(*decoded->update, from);
      break;
    case wire::MsgType::kUpdateBatch:
      handle_update_batch(*decoded->update_batch, from);
      break;
    case wire::MsgType::kUpdateAck:
      handle_update_ack(*decoded->update_ack, from);
      break;
    case wire::MsgType::kRetransmitRequest:
      handle_retransmit_request(*decoded->retransmit, from);
      break;
    case wire::MsgType::kPing:
      handle_ping(*decoded->ping, from);
      break;
    case wire::MsgType::kPingAck:
      handle_ping_ack(*decoded->ping_ack, from);
      break;
    case wire::MsgType::kStateTransfer:
      handle_state_transfer(*decoded->state_transfer, from);
      break;
    case wire::MsgType::kStateTransferAck:
      handle_state_transfer_ack(*decoded->state_transfer_ack, from);
      break;
    case wire::MsgType::kResyncRequest:
      handle_resync_request(*decoded->resync_request, from);
      break;
    case wire::MsgType::kStateDelta:
      handle_state_delta(*decoded->state_delta, from);
      break;
    case wire::MsgType::kConstraintDowngrade:
      handle_constraint_downgrade(*decoded->constraint_downgrade, from);
      break;
    case wire::MsgType::kConstraintRestore:
      handle_constraint_restore(*decoded->constraint_restore, from);
      break;
    case wire::MsgType::kFrontier:
      break;  // dispatched before epoch fencing; unreachable here
    case wire::MsgType::kActivePrepare:
    case wire::MsgType::kActiveAck:
      // Active-replication traffic never targets an RTPB replica.
      RTPB_WARN("rtpb", "unexpected active-replication message; dropped");
      break;
  }
}

void ReplicaServer::handle_update(const wire::Update& u, net::Endpoint from) {
  telemetry::Hub& hub = sim_.telemetry();
  if (role_ != Role::kBackup) {
    // Role guard: a primary must never apply (or ack) an update stream.
    // Reachable when fencing is off — a deposed old primary keeps sending
    // after this replica was promoted over it.
    ++role_rejections_;
    if (hub.enabled()) {
      hub.registry().counter("core.role_rejected").add();
      hub.record(hub.current_span(), node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-role-reject", obj_tag(u.object, u.version));
    }
    return;
  }
  if (!store_.contains(u.object)) {
    // Registration hasn't reached us yet; the acked transfer will retry.
    ++stale_updates_;
    if (hub.enabled()) {
      hub.registry().counter("core.backup.unknown_object").add();
      hub.record(hub.current_span(), node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-unknown", obj_tag(u.object, u.version));
    }
    return;
  }
  // Log-before-apply (backup side): the version must be durable before
  // the store — and the ack below — can expose it.  Staleness is gated
  // here first so duplicate/old versions never hit the WAL.
  if (u.version > store_.get(u.object).version &&
      !durable_log_update(u.object, u.version, u.timestamp, u.value)) {
    return;  // fail-stopped: no apply, no ack
  }
  const bool applied = store_.apply(u.object, u.version, u.timestamp, u.value, sim_.now());
  if (applied) {
    ++updates_applied_;
    if (u.epoch != 0 && u.epoch < epoch_) {
      // Only reachable with fencing disabled: we just applied state from
      // a deposed primary's incarnation.  The chaos no-cross-epoch-apply
      // oracle trips on this counter.
      ++cross_epoch_applies_;
      if (hub.enabled()) hub.registry().counter("core.epoch.cross_epoch_applies").add();
    }
    metrics_.on_backup_apply(u.object, u.timestamp, sim_.now());
    // Temporal-slack SLO sample: staleness at apply vs the negotiated
    // window δ.  Fed inline (no timers) so it stays a pure observer.
    telemetry::SloMonitor& slo = sim_.telemetry().slo();
    if (slo.enabled()) {
      slo.observe(u.object, sim_.now(), sim_.now() - u.timestamp,
                  metrics_.window_of(u.object));
    }
    flight(sim_, telemetry::FlightKind::kUpdateApply, node(), u.object, u.version, epoch_,
           hub.enabled() ? hub.span_for(u.object, u.version) : 0);
  } else {
    ++stale_updates_;
  }
  if (hub.enabled()) {
    const telemetry::SpanId span = hub.span_for(u.object, u.version);
    if (applied) {
      hub.registry().counter("core.backup.applies").add();
      hub.registry().histogram("core.backup.apply_latency_ms").record(sim_.now() - u.timestamp);
      hub.record(span, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-apply", obj_tag(u.object, u.version));
    } else {
      hub.registry().counter("core.backup.stale").add();
      hub.record(span, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-stale", obj_tag(u.object, u.version));
    }
  }
  arm_watchdog(u.object);
  if (config_.ack_every_update) {
    ++acks_sent_;
    send_to(from, wire::encode(wire::UpdateAck{u.object, u.version, epoch_}));
  }
  maybe_checkpoint();
}

void ReplicaServer::handle_update_batch(wire::UpdateBatch& b, net::Endpoint from) {
  // Entries apply strictly in batch order, each through the single-update
  // path so role guards, staleness accounting, watchdogs and (in ack mode)
  // per-object acks behave exactly as for kUpdate frames.
  for (wire::UpdateBatchEntry& entry : b.entries) {
    wire::Update u;
    u.object = entry.object;
    u.version = entry.version;
    u.timestamp = entry.timestamp;
    u.retransmission = false;
    u.value = std::move(entry.value);
    u.epoch = b.epoch;
    handle_update(u, from);
  }
}

void ReplicaServer::handle_update_ack(const wire::UpdateAck& a, net::Endpoint from) {
  if (role_ != Role::kPrimary) return;
  auto it = peer_state_.find(from.node);
  if (it == peer_state_.end()) return;  // ack from a node we no longer replicate to
  std::uint64_t& acked = it->second.acked[a.object];
  acked = std::max(acked, a.version);
  if (sim_.telemetry().enabled()) {
    sim_.telemetry().registry().counter(peer_counter(from.node, "acks")).add();
  }
  flight(sim_, telemetry::FlightKind::kAck, node(), a.object, a.version, epoch_, 0,
         from.node);
}

void ReplicaServer::handle_retransmit_request(const wire::RetransmitRequest& r,
                                              net::Endpoint /*from*/) {
  if (role_ != Role::kPrimary) return;
  if (!store_.contains(r.object)) return;
  if (store_.get(r.object).version <= r.have_version) return;  // backup is current
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.primary.retransmit_requests").add();
    hub.record(hub.span_for(r.object, store_.get(r.object).version), node(),
               telemetry::EventKind::kInstant, rtpb_track(node()), "retx-request",
               obj_tag(r.object, r.have_version) + " held by backup");
  }
  // Serving a retransmission costs CPU like a regular transmission, but at
  // background priority: it must not perturb the admitted periodic tasks.
  const ObjectId id = r.object;
  const Duration cost = store_.get(id).spec.update_exec;
  if (cpu_.started()) {
    cpu_.submit_job("retx-" + std::to_string(id), cost, [this, id](const sched::JobInfo& job) {
      send_update(id, /*retransmission=*/true, &job);
    });
  } else {
    send_update(id, /*retransmission=*/true);
  }
}

void ReplicaServer::handle_ping(const wire::Ping& p, net::Endpoint from) {
  send_to(from, wire::encode(wire::PingAck{p.seq, epoch_}));
}

void ReplicaServer::handle_ping_ack(const wire::PingAck& p, net::Endpoint from) {
  auto it = peer_state_.find(from.node);
  if (it != peer_state_.end() && it->second.detector) it->second.detector->on_ping_ack(p.seq);
}

void ReplicaServer::handle_state_transfer(const wire::StateTransfer& st, net::Endpoint from) {
  telemetry::Hub& hub = sim_.telemetry();
  if (role_ != Role::kBackup) {
    // Role guard: a primary never takes state from another primary.
    ++role_rejections_;
    if (hub.enabled()) hub.registry().counter("core.role_rejected").add();
    return;
  }
  // Re-peer: a transfer from a node we do not follow is a recruitment —
  // after a failover the new primary recruits the surviving backups, and
  // they must stop heartbeating the dead (or deposed) old primary.
  const bool known_peer =
      std::find_if(peers_.begin(), peers_.end(),
                   [&](const net::Endpoint& e) { return e.node == from.node; }) != peers_.end();
  if (!known_peer) follow_new_primary(from);

  // Reorder guard: per-sender transfer ids are monotone.  Object entries
  // are safe to apply idempotently from ANY transfer (versions gate the
  // store), but the constraint table and watchdog expectations are
  // last-writer-wins snapshots — a delayed retry of an older transfer
  // must not clobber the newer state we already hold.
  std::uint64_t& high_water = transfer_high_water_[from.node];
  const bool newest = st.transfer_id > high_water;
  if (newest) high_water = st.transfer_id;
  if (hub.enabled()) {
    hub.registry().counter("core.backup.state_transfers").add();
    if (!newest) hub.registry().counter("core.backup.state_transfers_stale").add();
    hub.record(hub.current_span(), node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "state-transfer",
               std::to_string(st.entries.size()) + " entries" + (newest ? "" : " (stale id)"));
  }
  for (const auto& entry : st.entries) {
    if (!store_.contains(entry.spec.id)) {
      if (!durable_log_insert(entry.spec)) return;  // fail-stopped
      store_.insert(entry.spec);
      metrics_.track_object(entry.spec.id, entry.spec.window(), entry.spec.client_period);
    } else if (newest) {
      // A rejoiner may hold a stale spec (e.g. its recovered image
      // predates a QoS downgrade the sender still runs under): the
      // sender's spec is the admitted one, adopt it like the constraint
      // table — a last-writer-wins snapshot behind the reorder guard.
      store_.update_spec(entry.spec.id, entry.spec);
      metrics_.track_object(entry.spec.id, entry.spec.window(), entry.spec.client_period);
    }
    if (entry.version > 0) {
      if (entry.version > store_.get(entry.spec.id).version &&
          !durable_log_update(entry.spec.id, entry.version, entry.timestamp, entry.value)) {
        return;  // fail-stopped: no apply, no ack
      }
      if (store_.apply(entry.spec.id, entry.version, entry.timestamp, entry.value, sim_.now())) {
        if (st.epoch != 0 && st.epoch < epoch_) {
          ++cross_epoch_applies_;
          if (hub.enabled()) hub.registry().counter("core.epoch.cross_epoch_applies").add();
        }
        metrics_.on_backup_apply(entry.spec.id, entry.timestamp, sim_.now());
      }
    }
    if (newest) {
      WatchdogState& w = watchdogs_[entry.spec.id];
      w.expected_period = entry.update_period;
      arm_watchdog(entry.spec.id);
    }
  }
  if (newest) replicated_constraints_ = st.constraints;
  // A full transfer also satisfies a pending resync (the fallback path).
  resync_pending_ = false;
  resync_retry_.cancel();
  // Always ack — even a stale transfer id — so the sender's retry loop
  // terminates.
  send_to(from, wire::encode(wire::StateTransferAck{st.transfer_id, epoch_}));
  maybe_checkpoint();
}

void ReplicaServer::handle_state_transfer_ack(const wire::StateTransferAck& ack,
                                              net::Endpoint from) {
  if (role_ != Role::kPrimary) return;
  auto it = pending_transfers_.find(ack.transfer_id);
  if (it == pending_transfers_.end()) return;
  it->second.awaiting.erase(from.node);
  const bool was_pending = it->second.awaiting.empty();
  if (was_pending) pending_transfers_.erase(it);
  if (was_pending && pending_transfers_.empty()) {
    transfer_retry_.cancel();
    if (transfer_backoff_) transfer_backoff_->reset();
  }
  if (was_pending && !peers_.empty()) {
    // Recruited backup (or fresh registration) confirmed: (re)start
    // replication machinery.
    sync_update_tasks();
    start_heartbeat();
    if (hooks_.on_backup_recruited) hooks_.on_backup_recruited();
  }
}

void ReplicaServer::handle_constraint_downgrade(const wire::ConstraintDowngrade& d,
                                                net::Endpoint from) {
  (void)from;
  telemetry::Hub& hub = sim_.telemetry();
  if (role_ != Role::kBackup) {
    ++role_rejections_;
    if (hub.enabled()) hub.registry().counter("core.role_rejected").add();
    return;
  }
  if (!store_.contains(d.object)) return;
  // Reorder guard: per-object renegotiation seqs are monotone.  A delayed
  // duplicate of an older downgrade (or a downgrade arriving after the
  // restore that undid it) must not clobber the newer QoS.
  std::uint64_t& applied = qos_applied_seq_[d.object];
  if (d.qos_seq <= applied) return;
  applied = d.qos_seq;
  next_qos_seq_ = std::max(next_qos_seq_, d.qos_seq + 1);

  ObjectSpec spec = store_.get(d.object).spec;
  spec.delta_primary = d.delta_primary;
  spec.delta_backup = d.delta_backup;
  store_.update_spec(d.object, spec);
  metrics_.track_object(d.object, spec.window(), spec.client_period);
  WatchdogState& w = watchdogs_[d.object];
  w.expected_period = d.update_period;
  arm_watchdog(d.object);
  qos_notice_at_[d.object] = sim_.now();
  ++downgrades_received_;
  RTPB_INFO("rtpb", "backup@node%u applied QoS downgrade: object %u window %s (seq %llu)", node(),
            d.object, spec.window().to_string().c_str(),
            static_cast<unsigned long long>(d.qos_seq));
  if (hub.enabled()) {
    hub.registry().counter("core.degrade.downgrades_received").add();
    hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "qos-downgrade-recv",
               "obj" + std::to_string(d.object) + " window " + spec.window().to_string());
  }
}

void ReplicaServer::handle_constraint_restore(const wire::ConstraintRestore& rs,
                                              net::Endpoint from) {
  (void)from;
  telemetry::Hub& hub = sim_.telemetry();
  if (role_ != Role::kBackup) {
    ++role_rejections_;
    if (hub.enabled()) hub.registry().counter("core.role_rejected").add();
    return;
  }
  if (!store_.contains(rs.object)) return;
  std::uint64_t& applied = qos_applied_seq_[rs.object];
  if (rs.qos_seq <= applied) return;
  applied = rs.qos_seq;
  next_qos_seq_ = std::max(next_qos_seq_, rs.qos_seq + 1);

  ObjectSpec spec = store_.get(rs.object).spec;
  spec.delta_backup = rs.delta_backup;
  store_.update_spec(rs.object, spec);
  metrics_.track_object(rs.object, spec.window(), spec.client_period);
  WatchdogState& w = watchdogs_[rs.object];
  w.expected_period = rs.update_period;
  arm_watchdog(rs.object);
  qos_notice_at_[rs.object] = sim_.now();
  RTPB_INFO("rtpb", "backup@node%u applied QoS restore: object %u window %s (seq %llu)", node(),
            rs.object, spec.window().to_string().c_str(),
            static_cast<unsigned long long>(rs.qos_seq));
  if (hub.enabled()) {
    hub.registry().counter("core.degrade.restores_received").add();
    hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "qos-restore-recv", "obj" + std::to_string(rs.object));
  }
}

// ---------------------------------------------------------------------------
// Cross-shard frontier exchange (sharded scale-out).
// ---------------------------------------------------------------------------

void ReplicaServer::add_frontier_peer(net::Endpoint peer) {
  if (std::find(frontier_peers_.begin(), frontier_peers_.end(), peer) == frontier_peers_.end()) {
    frontier_peers_.push_back(peer);
  }
}

void ReplicaServer::announce_frontier(std::uint32_t shard, TimePoint stable_ts) {
  if (crashed_ || frontier_peers_.empty()) return;
  wire::Frontier f;
  f.shard = shard;
  f.stable_ts = stable_ts;
  f.epoch = epoch_;
  // Encode once; each peer's copy shares the body buffer.
  xkernel::Message frame{wire::encode(f)};
  for (const net::Endpoint& peer : frontier_peers_) send_to(peer, frame);
  ++frontier_frames_sent_;
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.shard.frontier_sent").add();
  }
}

void ReplicaServer::ingest_frontier(const wire::Frontier& f) {
  if (crashed_) return;
  handle_frontier(f, endpoint());
}

void ReplicaServer::handle_frontier(const wire::Frontier& f, net::Endpoint from) {
  (void)from;
  ++frontier_frames_received_;
  // Monotone merge: a frontier only ever advances, so duplicated, delayed
  // or reordered frames (and frames from a deposed peer primary) can never
  // drag the view backwards.
  TimePoint& have = peer_frontiers_[f.shard];
  have = std::max(have, f.stable_ts);
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.shard.frontier_received").add();
    hub.record(hub.current_span(), node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "frontier-recv", "shard" + std::to_string(f.shard));
  }
}

TimePoint ReplicaServer::peer_frontier(std::uint32_t shard) const {
  auto it = peer_frontiers_.find(shard);
  return it != peer_frontiers_.end() ? it->second : TimePoint{};
}

void ReplicaServer::arm_watchdog(ObjectId id) {
  if (role_ != Role::kBackup) return;
  auto it = watchdogs_.find(id);
  if (it == watchdogs_.end()) return;
  WatchdogState& w = it->second;
  if (w.expected_period <= Duration::zero()) return;
  w.timer.cancel();
  w.timer = sim_.schedule_after(w.expected_period * config_.watchdog_factor, [this, id] {
    if (crashed_ || role_ != Role::kBackup) return;
    const auto state = store_.find(id);
    if (!state) return;
    ++nacks_sent_;
    telemetry::Hub& hub = sim_.telemetry();
    if (hub.enabled()) {
      hub.registry().counter("core.backup.nacks").add();
      // Blame the newest span the primary minted for this object — that is
      // the update whose absence tripped the watchdog.
      hub.record(hub.latest_span(id), node(), telemetry::EventKind::kInstant,
                 rtpb_track(node()), "watchdog-nack", obj_tag(id, state->version) + " held");
    }
    flight(sim_, telemetry::FlightKind::kRetransmitReq, node(), id, state->version, epoch_,
           hub.enabled() ? hub.latest_span(id) : 0);
    if (!peers_.empty()) {
      send_to(peers_.front(), wire::encode(wire::RetransmitRequest{id, state->version, epoch_}));
    }
    arm_watchdog(id);
  });
}

// ---------------------------------------------------------------------------
// Durability & crash recovery.
// ---------------------------------------------------------------------------

wire::StateEntry ReplicaServer::state_entry_for(ObjectId id) const {
  const ObjectState& state = store_.get(id);
  wire::StateEntry entry;
  entry.spec = state.spec;
  entry.update_period = effective_update_interval(id);
  entry.version = state.version;
  entry.timestamp = state.origin_timestamp;
  entry.value = state.value;
  return entry;
}

bool ReplicaServer::durable_log_insert(const ObjectSpec& spec) {
  if (storage_ == nullptr) return true;
  if (!storage_->log_insert(spec)) {
    fail_stop("wal-insert");
    return false;
  }
  if (sim_.telemetry().enabled()) {
    sim_.telemetry().registry().counter("core.store.wal_records").add();
  }
  return true;
}

bool ReplicaServer::durable_log_update(ObjectId id, std::uint64_t version, TimePoint origin_ts,
                                       const Bytes& value) {
  if (storage_ == nullptr) return true;
  // `timestamp` is this site's apply time — exactly what store_.apply()
  // stamps next — so the recovered state matches the in-memory one
  // byte-for-byte.
  if (!storage_->log_write(id, version, sim_.now(), origin_ts, value)) {
    fail_stop("wal-write");
    return false;
  }
  if (sim_.telemetry().enabled()) {
    sim_.telemetry().registry().counter("core.store.wal_records").add();
  }
  return true;
}

void ReplicaServer::durable_log_meta() {
  if (storage_ == nullptr || crashed_) return;
  if (!storage_->log_meta(epoch_, next_transfer_id_)) fail_stop("wal-meta");
}

std::uint64_t ReplicaServer::mint_transfer_id() {
  const std::uint64_t tid = next_transfer_id_++;
  // Persist the new high water before the id can reach the wire: a
  // restarted primary must never re-mint an id its peers already saw, or
  // their per-sender reorder guards would discard the fresh transfer.
  durable_log_meta();
  return tid;
}

void ReplicaServer::maybe_checkpoint() {
  if (storage_ == nullptr || crashed_ || !storage_->should_checkpoint()) return;
  std::vector<ObjectState> states;
  states.reserve(store_.size());
  store_.for_each([&states](const ObjectState& s) { states.push_back(s); });
  if (!storage_->checkpoint(states, epoch_, next_transfer_id_)) {
    fail_stop("checkpoint");
    return;
  }
  if (sim_.telemetry().enabled()) {
    sim_.telemetry().registry().counter("core.store.checkpoints").add();
  }
}

void ReplicaServer::fail_stop(const char* what) {
  if (crashed_) return;
  RTPB_WARN("rtpb", "%s@node%u: storage append failed (%s); fail-stop", role_name(role_),
            node(), what);
  if (sim_.telemetry().enabled()) {
    sim_.telemetry().registry().counter("core.store.fail_stops").add();
  }
  crash();
}

void ReplicaServer::restart() {
  RTPB_EXPECTS(started_);
  RTPB_EXPECTS(crashed_);
  RTPB_EXPECTS(storage_ != nullptr);
  // Power-cycle: the devices keep their contents; any armed crash point or
  // latched failure clears with the power.
  storage_->wal_device().clear_failure();
  storage_->checkpoint_device().clear_failure();
  store::RecoveryResult rec = storage_->recover();

  // Rebuild the in-memory store from the recovered image: last valid
  // checkpoint plus the WAL tail, already merged by the durability layer.
  store_ = ObjectStore{};
  for (const ObjectState& s : rec.states) {
    store_.restore(s);
    metrics_.track_object(s.spec.id, s.spec.window(), s.spec.client_period);
  }
  epoch_ = rec.epoch;
  next_transfer_id_ = rec.next_transfer_id;

  // Durable-recovery oracle: every version the dead incarnation's store
  // held (= could have acked) must be in the recovered image.  Under
  // log-before-apply this count stays 0; a torn WAL tail only ever holds
  // writes that were never applied or acked.
  for (const auto& [id, acked_version] : acked_at_crash_) {
    std::uint64_t have = 0;
    if (const auto s = store_.find(id)) have = s->version;
    if (have < acked_version) recovery_lost_updates_ += acked_version - have;
  }
  acked_at_crash_.clear();

  // Shed every trace of the dead incarnation's runtime machinery.  The
  // CPU restart below re-arms all registered tasks, so the old update
  // tasks must be removed from the scheduler first.
  for (auto& [id, task] : update_tasks_) cpu_.remove_task(task.task);
  update_tasks_.clear();
  ack_state_.clear();
  staged_updates_.clear();
  watchdogs_.clear();  // timers were cancelled at crash()
  pending_transfers_.clear();
  transfer_high_water_.clear();
  downgrades_.clear();
  // QoS renegotiation is not durable: the recovered specs are whatever
  // the WAL image holds, which predates any notice this incarnation
  // applied.  Claiming the old seqs in the resync vector would hide a
  // spec-stale object from the dirty set — report 0 and re-learn.
  qos_applied_seq_.clear();
  clear_peers();

  // The rejoiner always comes back as an ORPHANED, non-successor backup —
  // even a crashed primary.  Its recovered epoch may predate a failover
  // it slept through, so it must not claim any role until the service
  // re-points it at the acting primary and a transfer re-peers it.
  role_ = Role::kBackup;
  successor_ = false;
  crashed_ = false;
  resync_attempts_ = 0;
  resync_pending_ = false;
  ++recoveries_;

  network_.set_node_up(node(), true);
  cpu_.start(sim_.now());

  if (sim_.trace().enabled()) {
    sim_.trace().record(sim_.now(), sim::TraceCategory::kService, "restart",
                        "node" + std::to_string(node()) + " epoch" + std::to_string(epoch_) +
                            " objects" + std::to_string(store_.size()));
  }
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.store.recoveries").add();
    hub.registry().counter("core.store.replayed_wal_records")
        .add(static_cast<std::uint64_t>(rec.wal_records));
    if (rec.wal_torn) hub.registry().counter("core.store.torn_wal_tails").add();
    if (rec.checkpoint_torn) hub.registry().counter("core.store.torn_checkpoint_tails").add();
    hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "restart",
               std::to_string(rec.wal_records) + " wal records on " +
                   std::to_string(rec.checkpoint_records) + " checkpoint(s)");
  }
  flight(sim_, telemetry::FlightKind::kRoleChange, node(), 0, 0, epoch_, 0,
         static_cast<std::int64_t>(rec.wal_records), "restart");
  RTPB_INFO("rtpb",
            "node%u restarted from durable state: %zu object(s), epoch %llu, "
            "%zu wal record(s)%s",
            node(), store_.size(), static_cast<unsigned long long>(epoch_), rec.wal_records,
            rec.wal_torn ? " (torn tail discarded)" : "");
}

void ReplicaServer::request_resync() {
  if (crashed_ || role_ != Role::kBackup || peers_.empty()) return;
  if (config_.transfer_retry_limit > 0 && resync_attempts_ > config_.transfer_retry_limit) {
    RTPB_WARN("rtpb", "backup@node%u gave up resyncing after %u attempts", node(),
              resync_attempts_ - 1);
    resync_pending_ = false;
    return;
  }
  wire::ResyncRequest rq;
  store_.for_each([this, &rq](const ObjectState& s) {
    const auto q = qos_applied_seq_.find(s.spec.id);
    rq.have.push_back(wire::ResyncEntry{
        s.spec.id, s.version, q != qos_applied_seq_.end() ? q->second : 0});
  });
  // Deliberately the epoch-0 bootstrap wildcard (see wire.hpp): the
  // recovered epoch may be stale and a fenced resync would strand us.
  ++resync_requests_sent_;
  ++resync_attempts_;
  resync_pending_ = true;
  if (sim_.telemetry().enabled()) {
    sim_.telemetry().registry().counter("core.store.resync_requests").add();
  }
  send_to(peers_.front(), wire::encode(rq));
  // Re-ask until a kStateDelta or full kStateTransfer lands.
  resync_retry_.cancel();
  resync_retry_ = sim_.schedule_after(config_.ping_period * 2, [this] {
    if (resync_pending_) request_resync();
  });
}

void ReplicaServer::handle_resync_request(const wire::ResyncRequest& rq, net::Endpoint from) {
  telemetry::Hub& hub = sim_.telemetry();
  if (role_ != Role::kPrimary) {
    ++role_rejections_;
    if (hub.enabled()) hub.registry().counter("core.role_rejected").add();
    return;
  }
  // Dirty set: everything the rejoiner has never seen, is version-behind
  // on, or holds under an older QoS spec than the one admitted here (QoS
  // state is not durable — a restarted replica reports seq 0, so any
  // object this primary ever renegotiated resyncs its spec too).
  std::map<ObjectId, const wire::ResyncEntry*> have;
  for (const wire::ResyncEntry& e : rq.have) have[e.object] = &e;
  std::vector<ObjectId> dirty;
  store_.for_each([&](const ObjectState& s) {
    const auto it = have.find(s.spec.id);
    const auto q = qos_applied_seq_.find(s.spec.id);
    const std::uint64_t qos_here = q != qos_applied_seq_.end() ? q->second : 0;
    if (it == have.end() || it->second->version < s.version ||
        it->second->qos_seq < qos_here) {
      dirty.push_back(s.spec.id);
    }
  });

  if (rq.have.empty() || dirty.size() == store_.size()) {
    // The delta saves nothing (empty vector, or everything is dirty):
    // fall back to the full-transfer recruitment path.
    ++resync_fulls_sent_;
    if (hub.enabled()) hub.registry().counter("core.store.resync_fulls").add();
    recruit_backup(from);
    return;
  }

  if (std::find_if(peers_.begin(), peers_.end(), [&](const net::Endpoint& e) {
        return e.node == from.node;
      }) == peers_.end()) {
    add_peer(from);
  }

  const std::uint64_t tid = mint_transfer_id();
  PendingTransfer& pending = pending_transfers_[tid];
  pending.ids = dirty;
  pending.awaiting.insert(from.node);
  pending.delta = true;

  wire::StateDelta sd;
  sd.transfer_id = tid;
  for (ObjectId id : dirty) sd.entries.push_back(state_entry_for(id));
  sd.constraints = replicated_constraints_;
  sd.epoch = epoch_;
  ++resync_deltas_sent_;
  delta_entries_sent_ += dirty.size();
  if (hub.enabled()) {
    hub.registry().counter("core.store.resync_deltas").add();
    hub.registry().counter("core.store.delta_entries")
        .add(static_cast<std::uint64_t>(dirty.size()));
    hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "resync-delta", std::to_string(dirty.size()) + "/" +
                                   std::to_string(store_.size()) + " dirty to node" +
                                   std::to_string(from.node));
  }
  RTPB_INFO("rtpb", "primary@node%u resyncs node%u incrementally: %zu/%zu object(s) dirty",
            node(), from.node, dirty.size(), store_.size());
  send_to(from, wire::encode(sd));
  arm_transfer_retry();
}

void ReplicaServer::handle_state_delta(wire::StateDelta& sd, net::Endpoint from) {
  telemetry::Hub& hub = sim_.telemetry();
  if (role_ != Role::kBackup) {
    ++role_rejections_;
    if (hub.enabled()) hub.registry().counter("core.role_rejected").add();
    return;
  }
  // Identical discipline to handle_state_transfer: re-peer on an unknown
  // sender, share the per-sender transfer-id reorder guard (deltas and
  // full transfers are totally ordered against each other), version-gate
  // every apply, always ack.
  const bool known_peer =
      std::find_if(peers_.begin(), peers_.end(),
                   [&](const net::Endpoint& e) { return e.node == from.node; }) != peers_.end();
  if (!known_peer) follow_new_primary(from);

  std::uint64_t& high_water = transfer_high_water_[from.node];
  const bool newest = sd.transfer_id > high_water;
  if (newest) high_water = sd.transfer_id;
  if (hub.enabled()) {
    hub.registry().counter("core.backup.state_deltas").add();
    if (!newest) hub.registry().counter("core.backup.state_deltas_stale").add();
    hub.record(hub.current_span(), node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "state-delta",
               std::to_string(sd.entries.size()) + " entries" + (newest ? "" : " (stale id)"));
  }
  for (wire::StateEntry& entry : sd.entries) {
    if (!store_.contains(entry.spec.id)) {
      if (!durable_log_insert(entry.spec)) return;  // fail-stopped
      store_.insert(entry.spec);
      metrics_.track_object(entry.spec.id, entry.spec.window(), entry.spec.client_period);
    } else if (newest) {
      // Adopt the sender's (possibly QoS-downgraded) spec — see the
      // full-transfer handler.
      store_.update_spec(entry.spec.id, entry.spec);
      metrics_.track_object(entry.spec.id, entry.spec.window(), entry.spec.client_period);
    }
    if (entry.version > 0) {
      if (entry.version > store_.get(entry.spec.id).version &&
          !durable_log_update(entry.spec.id, entry.version, entry.timestamp, entry.value)) {
        return;  // fail-stopped: no apply, no ack
      }
      if (store_.apply(entry.spec.id, entry.version, entry.timestamp, std::move(entry.value),
                       sim_.now())) {
        if (sd.epoch != 0 && sd.epoch < epoch_) {
          ++cross_epoch_applies_;
          if (hub.enabled()) hub.registry().counter("core.epoch.cross_epoch_applies").add();
        }
        metrics_.on_backup_apply(entry.spec.id, entry.timestamp, sim_.now());
      }
    }
    if (newest) {
      WatchdogState& w = watchdogs_[entry.spec.id];
      w.expected_period = entry.update_period;
      arm_watchdog(entry.spec.id);
    }
  }
  if (newest) replicated_constraints_ = sd.constraints;
  resync_pending_ = false;
  resync_retry_.cancel();
  send_to(from, wire::encode(wire::StateTransferAck{sd.transfer_id, epoch_}));
  maybe_checkpoint();
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

const FailureDetector* ReplicaServer::detector(net::NodeId peer) const {
  auto it = peer_state_.find(peer);
  return it != peer_state_.end() ? it->second.detector.get() : nullptr;
}

std::uint64_t ReplicaServer::peer_acked_version(net::NodeId peer, ObjectId id) const {
  auto it = peer_state_.find(peer);
  if (it == peer_state_.end()) return 0;
  auto a = it->second.acked.find(id);
  return a != it->second.acked.end() ? a->second : 0;
}

std::uint64_t ReplicaServer::highest_transfer_applied(net::NodeId sender) const {
  auto it = transfer_high_water_.find(sender);
  return it != transfer_high_water_.end() ? it->second : 0;
}

}  // namespace rtpb::core
