#include "core/server.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace rtpb::core {

namespace {
std::string rtpb_track(net::NodeId n) { return "node" + std::to_string(n) + "/rtpb"; }

std::string obj_tag(ObjectId id, std::uint64_t version) {
  return "obj" + std::to_string(id) + " v" + std::to_string(version);
}
}  // namespace

ReplicaServer::ReplicaServer(sim::Simulator& sim, net::Network& network, NameService& names,
                             ServiceConfig config, Metrics& metrics, Role role,
                             std::string service_name)
    : sim_(sim),
      network_(network),
      names_(names),
      config_(config),
      metrics_(metrics),
      role_(role),
      service_name_(std::move(service_name)),
      stack_(network),
      cpu_(sim, config.cpu_policy, std::string(role_name(role)) + "-cpu"),
      rng_(sim.rng().fork()) {
  if (config_.enable_fragmentation) {
    frag_ = std::make_unique<xkernel::FragLite>(sim, config_.fragment_payload);
    frag_->set_telemetry(&sim.telemetry(), node());
    frag_->connect_down(stack_.udp());
    frag_->set_handler([this](xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
      handle_message(msg, attrs);
    });
    stack_.udp().bind(kRtpbPort, [this](xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
      xkernel::MsgAttrs mutable_attrs = attrs;
      frag_->demux(msg, mutable_attrs);
    });
  } else {
    stack_.udp().bind(kRtpbPort, [this](xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
      handle_message(msg, attrs);
    });
  }
}

ReplicaServer::~ReplicaServer() = default;

void ReplicaServer::add_peer(net::Endpoint peer) {
  RTPB_EXPECTS(peer.node != net::kInvalidNode);
  peers_.push_back(peer);
}

void ReplicaServer::start() {
  RTPB_EXPECTS(!started_);
  started_ = true;

  // Admission control needs the delay bound ℓ of the replication link.
  Duration ell = Duration::zero();
  if (!peers_.empty()) {
    if (auto params = network_.link_params(node(), peers_.front().node)) {
      // Bound for a full-size update frame (largest object payload is not
      // known yet; use a 1 KiB budget, generous for the paper's objects).
      ell = params->delay_bound(1024);
    }
  }
  admission_ = std::make_unique<AdmissionController>(config_, ell);

  cpu_.start(sim_.now());
  if (role_ == Role::kPrimary) {
    names_.publish(service_name_, endpoint());
  }
  if (!peers_.empty()) start_heartbeat();
}

void ReplicaServer::start_heartbeat() {
  RTPB_EXPECTS(!peers_.empty());
  FailureDetector::Params params;
  params.ping_period = config_.ping_period;
  params.ack_timeout = config_.ping_ack_timeout;
  params.max_misses = config_.ping_max_misses;
  const net::Endpoint partner = peers_.front();
  detector_ = std::make_unique<FailureDetector>(
      sim_, params,
      [this, partner](std::uint64_t seq) { send_to(partner, wire::encode(wire::Ping{seq})); },
      [this] {
        RTPB_INFO("rtpb", "%s: heartbeat partner declared dead", role_name(role_));
        if (role_ == Role::kBackup) {
          if (successor_) {
            promote();
          } else if (hooks_.on_primary_lost) {
            hooks_.on_primary_lost();
          }
        } else {
          // §4.4: "If the backup is dead, the primary cancels the ping
          // messages as well as update events for each registered object."
          for (auto& [id, task] : update_tasks_) cpu_.remove_task(task.task);
          update_tasks_.clear();
          peers_.clear();
          transfer_retry_.cancel();
          pending_transfers_.clear();
        }
      });
  detector_->start();
}

void ReplicaServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  cpu_.stop();
  if (detector_) detector_->stop();
  transfer_retry_.cancel();
  for (auto& [id, w] : watchdogs_) w.timer.cancel();
  for (auto& [id, a] : ack_state_) a.timeout.cancel();
  network_.set_node_up(node(), false);
  RTPB_INFO("rtpb", "%s@node%u crashed", role_name(role_), node());
}

// ---------------------------------------------------------------------------
// Client-facing interface.
// ---------------------------------------------------------------------------

AdmissionResult ReplicaServer::register_object(const ObjectSpec& spec) {
  RTPB_EXPECTS(started_);
  RTPB_EXPECTS(role_ == Role::kPrimary);
  AdmissionResult result = admission_->admit(spec);
  if (!result.ok()) {
    RTPB_DEBUG("rtpb", "admission rejected object %u: %s", spec.id,
               admission_error_name(result.code()));
    return result;
  }
  const bool inserted = store_.insert(spec);
  RTPB_ASSERT(inserted);
  metrics_.track_object(spec.id, spec.window(), spec.client_period);

  // One periodic update-transmission task per admitted object (§4.3).
  sync_update_tasks();
  replicate_registration(spec.id);
  RTPB_INFO("rtpb", "admitted object %u (r=%s)", spec.id,
            admission_->update_period(spec.id).to_string().c_str());
  return result;
}

AdmissionStatus ReplicaServer::add_constraint(const InterObjectConstraint& c) {
  RTPB_EXPECTS(started_);
  RTPB_EXPECTS(role_ == Role::kPrimary);
  AdmissionStatus status = admission_->add_constraint(c);
  if (status.ok()) {
    replicated_constraints_.push_back(c);
    sync_update_tasks();  // constraint may have tightened periods

    // Replicate the constraint table to the backups (acked + retried like
    // a registration, with no object entries).
    if (!peers_.empty()) {
      const std::uint64_t tid = next_transfer_id_++;
      PendingTransfer& pending = pending_transfers_[tid];
      for (const net::Endpoint& peer : peers_) pending.awaiting.insert(peer.node);
      wire::StateTransfer st;
      st.transfer_id = tid;
      st.constraints = replicated_constraints_;
      const Bytes payload = wire::encode(st);
      for (const net::Endpoint& peer : peers_) send_to(peer, payload);
      if (!transfer_retry_.pending()) {
        transfer_retry_ = sim_.schedule_after(config_.ping_period * 2,
                                              [this] { retry_pending_registrations(); });
      }
    }
  }
  return status;
}

void ReplicaServer::local_write(ObjectId id, Bytes value, const sched::JobInfo& info) {
  RTPB_EXPECTS(role_ == Role::kPrimary);
  if (!store_.contains(id)) return;  // racing a failed registration
  store_.write(id, std::move(value), info.finish);
  metrics_.record_response(info.finish - info.release);
  metrics_.on_primary_write(id, info.finish);

  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    // Mint the causal span for this update version, back-dated with the
    // sensing job's scheduling history so the span's first hops show how
    // long the write waited for the CPU.
    const std::uint64_t version = store_.get(id).version;
    const telemetry::SpanId span = hub.begin_span(id, version);
    hub.registry().counter("core.primary.writes").add();
    hub.registry().histogram("core.primary.write_response_ms").record(info.finish - info.release);
    const std::string track = rtpb_track(node());
    hub.record_at(info.release, span, node(), telemetry::EventKind::kInstant, track,
                  "write-release", obj_tag(id, version));
    hub.record_at(info.start, span, node(), telemetry::EventKind::kInstant, track,
                  "write-start");
    hub.record_at(info.finish, span, node(), telemetry::EventKind::kInstant, track, "write",
                  obj_tag(id, version));
  }

  // Window-consistent baseline: each write immediately queues its own
  // transmission job (coupled), instead of the decoupled periodic tasks.
  if (config_.update_scheduling == UpdateScheduling::kCoupled && !peers_.empty() &&
      cpu_.started()) {
    const Duration cost = store_.get(id).spec.update_exec;
    cpu_.submit_job("xmit-now-" + std::to_string(id), cost,
                    [this, id](const sched::JobInfo& job) { send_update(id, false, &job); });
  }
}

std::optional<ObjectState> ReplicaServer::read(ObjectId id) const { return store_.find(id); }

// ---------------------------------------------------------------------------
// Update transmission (primary side).
// ---------------------------------------------------------------------------

void ReplicaServer::sync_update_tasks() {
  if (role_ != Role::kPrimary || peers_.empty()) return;
  if (config_.update_scheduling == UpdateScheduling::kCoupled) return;  // per-write sends
  for (const auto& [id, period] : admission_->update_periods()) {
    auto it = update_tasks_.find(id);
    if (it != update_tasks_.end() && it->second.period == period) continue;
    if (it != update_tasks_.end()) cpu_.remove_task(it->second.task);

    sched::TaskSpec task;
    task.name = "xmit-" + std::to_string(id);
    task.period = period;
    task.wcet = store_.contains(id) ? store_.get(id).spec.update_exec : millis(1);
    const ObjectId obj = id;
    const sched::TaskId tid = cpu_.add_task(task, [this, obj](const sched::JobInfo& job) {
      send_update(obj, /*retransmission=*/false, &job);
    });
    update_tasks_[id] = UpdateTaskState{tid, period};
  }
  // Drop tasks for objects no longer admitted.
  for (auto it = update_tasks_.begin(); it != update_tasks_.end();) {
    if (!admission_->update_periods().contains(it->first)) {
      cpu_.remove_task(it->second.task);
      it = update_tasks_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplicaServer::send_update(ObjectId id, bool retransmission, const sched::JobInfo* job) {
  if (crashed_ || peers_.empty() || !store_.contains(id)) return;
  const ObjectState& state = store_.get(id);
  if (state.version == 0) return;  // nothing written yet

  ++updates_sent_;
  if (retransmission) ++retransmissions_;

  telemetry::Hub& hub = sim_.telemetry();
  const telemetry::SpanId span =
      hub.enabled() ? hub.span_for(id, state.version) : telemetry::kNoSpan;
  // Everything pushed synchronously below (FRAGLITE → UDPLITE → IPLITE →
  // SIMETH → the link) records against this update's span.
  telemetry::ScopedSpan span_scope(hub, span);
  if (hub.enabled()) {
    const std::string track = rtpb_track(node());
    if (job != nullptr && span != telemetry::kNoSpan) {
      hub.record_at(job->release, span, node(), telemetry::EventKind::kInstant, track,
                    "xmit-release", obj_tag(id, state.version));
      hub.record_at(job->start, span, node(), telemetry::EventKind::kInstant, track,
                    "xmit-start");
    }
    hub.registry()
        .counter(retransmission ? "core.primary.retransmissions" : "core.primary.update_sends")
        .add();
    hub.record(span, node(), telemetry::EventKind::kInstant, track,
               retransmission ? "update-retx" : "update-send", obj_tag(id, state.version));
  }

  // §5 methodology: loss injected on the update stream itself (the paper's
  // "probability of message loss from the primary to the backup").
  if (rng_.bernoulli(config_.update_loss_probability)) {
    ++updates_loss_injected_;
    if (hub.enabled()) {
      hub.registry().counter("core.primary.loss_injected").add();
      hub.record(span, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-loss-injected", obj_tag(id, state.version));
    }
  } else {
    wire::Update u;
    u.object = id;
    u.version = state.version;
    u.timestamp = state.origin_timestamp;
    u.retransmission = retransmission;
    u.value = state.value;
    const Bytes payload = wire::encode(u);
    for (const net::Endpoint& peer : peers_) send_to(peer, payload);
  }

  if (config_.ack_every_update && !retransmission) arm_ack_timeout(id, state.version);
}

void ReplicaServer::arm_ack_timeout(ObjectId id, std::uint64_t version) {
  auto task_it = update_tasks_.find(id);
  const Duration period =
      task_it != update_tasks_.end() ? task_it->second.period : config_.ping_period;
  AckState& ack = ack_state_[id];
  ack.timeout.cancel();
  ack.timeout = sim_.schedule_after(period * config_.ack_timeout_periods, [this, id, version] {
    auto it = ack_state_.find(id);
    if (it == ack_state_.end() || it->second.acked_version >= version) return;
    RTPB_DEBUG("rtpb", "update %u v%llu unacked; retransmitting", id,
               static_cast<unsigned long long>(version));
    send_update(id, /*retransmission=*/true);
    arm_ack_timeout(id, version);
  });
}

// ---------------------------------------------------------------------------
// Registration replication.
// ---------------------------------------------------------------------------

Duration ReplicaServer::effective_update_interval(ObjectId id) const {
  if (config_.update_scheduling == UpdateScheduling::kCoupled) {
    return store_.get(id).spec.client_period;
  }
  return admission_->update_period(id);
}

void ReplicaServer::replicate_registration(ObjectId id) {
  if (peers_.empty()) return;
  const std::uint64_t tid = next_transfer_id_++;
  PendingTransfer& pending = pending_transfers_[tid];
  pending.ids = {id};
  for (const net::Endpoint& peer : peers_) pending.awaiting.insert(peer.node);

  wire::StateTransfer st;
  st.transfer_id = tid;
  const ObjectState& state = store_.get(id);
  wire::StateEntry entry;
  entry.spec = state.spec;
  entry.update_period = effective_update_interval(id);
  entry.version = state.version;
  entry.timestamp = state.origin_timestamp;
  entry.value = state.value;
  st.entries.push_back(std::move(entry));
  st.constraints = replicated_constraints_;

  const Bytes payload = wire::encode(st);
  for (const net::Endpoint& peer : peers_) send_to(peer, payload);
  if (!transfer_retry_.pending()) {
    transfer_retry_ =
        sim_.schedule_after(config_.ping_period * 2, [this] { retry_pending_registrations(); });
  }
}

void ReplicaServer::retry_pending_registrations() {
  if (crashed_ || peers_.empty() || pending_transfers_.empty()) return;
  for (const auto& [tid, pending] : pending_transfers_) {
    wire::StateTransfer st;
    st.transfer_id = tid;
    for (ObjectId id : pending.ids) {
      if (!store_.contains(id)) continue;
      const ObjectState& state = store_.get(id);
      wire::StateEntry entry;
      entry.spec = state.spec;
      entry.update_period = effective_update_interval(id);
      entry.version = state.version;
      entry.timestamp = state.origin_timestamp;
      entry.value = state.value;
      st.entries.push_back(std::move(entry));
    }
    st.constraints = replicated_constraints_;
    const Bytes payload = wire::encode(st);
    // Only peers that have not acknowledged yet need the retry.
    for (const net::Endpoint& peer : peers_) {
      if (pending.awaiting.contains(peer.node)) send_to(peer, payload);
    }
  }
  transfer_retry_ =
      sim_.schedule_after(config_.ping_period * 2, [this] { retry_pending_registrations(); });
}

// ---------------------------------------------------------------------------
// Failover.
// ---------------------------------------------------------------------------

void ReplicaServer::promote() {
  RTPB_EXPECTS(role_ == Role::kBackup);
  RTPB_EXPECTS(!crashed_);
  role_ = Role::kPrimary;
  promoted_at_ = sim_.now();
  if (sim_.trace().enabled()) {
    sim_.trace().record(sim_.now(), sim::TraceCategory::kService, "promote",
                        "node" + std::to_string(node()));
  }
  {
    telemetry::Hub& hub = sim_.telemetry();
    if (hub.enabled()) {
      hub.registry().counter("core.failovers").add();
      hub.record(telemetry::kNoSpan, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "promote");
    }
  }
  if (detector_) detector_->stop();
  for (auto& [id, w] : watchdogs_) w.timer.cancel();
  watchdogs_.clear();
  peers_.clear();  // the old primary is gone

  // Rewrite the name file to point clients at us (§4.4).
  names_.publish(service_name_, endpoint());

  // Rebuild admission state from the replicated specs so the service can
  // keep enforcing temporal constraints for new registrations.
  Duration ell = admission_ ? admission_->link_delay_bound() : Duration::zero();
  admission_ = std::make_unique<AdmissionController>(config_, ell);
  store_.for_each([this](const ObjectState& state) {
    const AdmissionResult r = admission_->admit(state.spec);
    if (!r.ok()) {
      RTPB_WARN("rtpb", "object %u no longer admissible after failover: %s", state.spec.id,
                admission_error_name(r.code()));
    }
  });
  for (const auto& c : replicated_constraints_) (void)admission_->add_constraint(c);

  RTPB_INFO("rtpb", "backup promoted to primary at %s", sim_.now().to_string().c_str());
  // Bring up the local (backup) client application via up-call.
  if (hooks_.on_promoted) hooks_.on_promoted();
}

void ReplicaServer::follow_new_primary(net::Endpoint new_primary) {
  RTPB_EXPECTS(role_ == Role::kBackup);
  RTPB_EXPECTS(!crashed_);
  if (detector_) detector_->stop();
  peers_.clear();
  peers_.push_back(new_primary);
  start_heartbeat();
  RTPB_INFO("rtpb", "backup@node%u now follows primary at node%u", node(), new_primary.node);
}

void ReplicaServer::recruit_backup(net::Endpoint new_backup) {
  RTPB_EXPECTS(role_ == Role::kPrimary);
  RTPB_EXPECTS(!crashed_);
  if (std::find(peers_.begin(), peers_.end(), new_backup) == peers_.end()) {
    peers_.push_back(new_backup);
  }

  const std::uint64_t tid = next_transfer_id_++;
  std::vector<ObjectId> ids = store_.ids();
  PendingTransfer& pending = pending_transfers_[tid];
  pending.ids = ids;
  pending.awaiting.insert(new_backup.node);

  wire::StateTransfer st;
  st.transfer_id = tid;
  for (ObjectId id : ids) {
    const ObjectState& state = store_.get(id);
    wire::StateEntry entry;
    entry.spec = state.spec;
    entry.update_period = effective_update_interval(id);
    entry.version = state.version;
    entry.timestamp = state.origin_timestamp;
    entry.value = state.value;
    st.entries.push_back(std::move(entry));
  }
  st.constraints = replicated_constraints_;
  send_to(new_backup, wire::encode(st));
  if (!transfer_retry_.pending()) {
    transfer_retry_ =
        sim_.schedule_after(config_.ping_period * 2, [this] { retry_pending_registrations(); });
  }
}

// ---------------------------------------------------------------------------
// Message handling.
// ---------------------------------------------------------------------------

void ReplicaServer::send_to(net::Endpoint to, Bytes payload) {
  if (crashed_) return;
  if (frag_) {
    xkernel::Message msg{std::move(payload)};
    xkernel::MsgAttrs attrs;
    attrs.src = endpoint();
    attrs.dst = to;
    frag_->push(msg, attrs);
  } else {
    stack_.send_datagram(kRtpbPort, to, std::move(payload));
  }
}

void ReplicaServer::handle_message(xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
  if (crashed_) return;
  const auto decoded = wire::decode(msg.contents());
  if (!decoded) {
    RTPB_WARN("rtpb", "undecodable RTPB message from node%u; dropped", attrs.src.node);
    return;
  }
  const net::Endpoint from = attrs.src;
  if (detector_) detector_->note_traffic();

  switch (decoded->type) {
    case wire::MsgType::kUpdate:
      handle_update(*decoded->update, from);
      break;
    case wire::MsgType::kUpdateAck:
      handle_update_ack(*decoded->update_ack);
      break;
    case wire::MsgType::kRetransmitRequest:
      handle_retransmit_request(*decoded->retransmit, from);
      break;
    case wire::MsgType::kPing:
      handle_ping(*decoded->ping, from);
      break;
    case wire::MsgType::kPingAck:
      handle_ping_ack(*decoded->ping_ack);
      break;
    case wire::MsgType::kStateTransfer:
      handle_state_transfer(*decoded->state_transfer, from);
      break;
    case wire::MsgType::kStateTransferAck:
      handle_state_transfer_ack(*decoded->state_transfer_ack, from);
      break;
    case wire::MsgType::kActivePrepare:
    case wire::MsgType::kActiveAck:
      // Active-replication traffic never targets an RTPB replica.
      RTPB_WARN("rtpb", "unexpected active-replication message; dropped");
      break;
  }
}

void ReplicaServer::handle_update(const wire::Update& u, net::Endpoint from) {
  telemetry::Hub& hub = sim_.telemetry();
  if (!store_.contains(u.object)) {
    // Registration hasn't reached us yet; the acked transfer will retry.
    ++stale_updates_;
    if (hub.enabled()) {
      hub.registry().counter("core.backup.unknown_object").add();
      hub.record(hub.current_span(), node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-unknown", obj_tag(u.object, u.version));
    }
    return;
  }
  const bool applied = store_.apply(u.object, u.version, u.timestamp, u.value, sim_.now());
  if (applied) {
    ++updates_applied_;
    metrics_.on_backup_apply(u.object, u.timestamp, sim_.now());
  } else {
    ++stale_updates_;
  }
  if (hub.enabled()) {
    const telemetry::SpanId span = hub.span_for(u.object, u.version);
    if (applied) {
      hub.registry().counter("core.backup.applies").add();
      hub.registry().histogram("core.backup.apply_latency_ms").record(sim_.now() - u.timestamp);
      hub.record(span, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-apply", obj_tag(u.object, u.version));
    } else {
      hub.registry().counter("core.backup.stale").add();
      hub.record(span, node(), telemetry::EventKind::kInstant, rtpb_track(node()),
                 "update-stale", obj_tag(u.object, u.version));
    }
  }
  arm_watchdog(u.object);
  if (config_.ack_every_update) {
    ++acks_sent_;
    send_to(from, wire::encode(wire::UpdateAck{u.object, u.version}));
  }
}

void ReplicaServer::handle_update_ack(const wire::UpdateAck& a) {
  auto it = ack_state_.find(a.object);
  if (it == ack_state_.end()) {
    ack_state_[a.object].acked_version = a.version;
    return;
  }
  it->second.acked_version = std::max(it->second.acked_version, a.version);
}

void ReplicaServer::handle_retransmit_request(const wire::RetransmitRequest& r,
                                              net::Endpoint /*from*/) {
  if (role_ != Role::kPrimary) return;
  if (!store_.contains(r.object)) return;
  if (store_.get(r.object).version <= r.have_version) return;  // backup is current
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.primary.retransmit_requests").add();
    hub.record(hub.span_for(r.object, store_.get(r.object).version), node(),
               telemetry::EventKind::kInstant, rtpb_track(node()), "retx-request",
               obj_tag(r.object, r.have_version) + " held by backup");
  }
  // Serving a retransmission costs CPU like a regular transmission, but at
  // background priority: it must not perturb the admitted periodic tasks.
  const ObjectId id = r.object;
  const Duration cost = store_.get(id).spec.update_exec;
  if (cpu_.started()) {
    cpu_.submit_job("retx-" + std::to_string(id), cost, [this, id](const sched::JobInfo& job) {
      send_update(id, /*retransmission=*/true, &job);
    });
  } else {
    send_update(id, /*retransmission=*/true);
  }
}

void ReplicaServer::handle_ping(const wire::Ping& p, net::Endpoint from) {
  send_to(from, wire::encode(wire::PingAck{p.seq}));
}

void ReplicaServer::handle_ping_ack(const wire::PingAck& p) {
  if (detector_) detector_->on_ping_ack(p.seq);
}

void ReplicaServer::handle_state_transfer(const wire::StateTransfer& st, net::Endpoint from) {
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("core.backup.state_transfers").add();
    hub.record(hub.current_span(), node(), telemetry::EventKind::kInstant, rtpb_track(node()),
               "state-transfer", std::to_string(st.entries.size()) + " entries");
  }
  for (const auto& entry : st.entries) {
    if (!store_.contains(entry.spec.id)) {
      store_.insert(entry.spec);
      metrics_.track_object(entry.spec.id, entry.spec.window(), entry.spec.client_period);
    }
    if (entry.version > 0) {
      if (store_.apply(entry.spec.id, entry.version, entry.timestamp, entry.value, sim_.now())) {
        metrics_.on_backup_apply(entry.spec.id, entry.timestamp, sim_.now());
      }
    }
    WatchdogState& w = watchdogs_[entry.spec.id];
    w.expected_period = entry.update_period;
    arm_watchdog(entry.spec.id);
  }
  replicated_constraints_ = st.constraints;
  send_to(from, wire::encode(wire::StateTransferAck{st.transfer_id}));
}

void ReplicaServer::handle_state_transfer_ack(const wire::StateTransferAck& ack,
                                              net::Endpoint from) {
  auto it = pending_transfers_.find(ack.transfer_id);
  if (it == pending_transfers_.end()) return;
  it->second.awaiting.erase(from.node);
  const bool was_pending = it->second.awaiting.empty();
  if (was_pending) pending_transfers_.erase(it);
  if (was_pending && pending_transfers_.empty()) transfer_retry_.cancel();
  if (was_pending && role_ == Role::kPrimary && !peers_.empty()) {
    // Recruited backup (or fresh registration) confirmed: (re)start
    // replication machinery.
    sync_update_tasks();
    if (!detector_ || !detector_->running()) start_heartbeat();
    if (hooks_.on_backup_recruited) hooks_.on_backup_recruited();
  }
}

void ReplicaServer::arm_watchdog(ObjectId id) {
  if (role_ != Role::kBackup) return;
  auto it = watchdogs_.find(id);
  if (it == watchdogs_.end()) return;
  WatchdogState& w = it->second;
  if (w.expected_period <= Duration::zero()) return;
  w.timer.cancel();
  w.timer = sim_.schedule_after(w.expected_period * config_.watchdog_factor, [this, id] {
    if (crashed_ || role_ != Role::kBackup) return;
    const auto state = store_.find(id);
    if (!state) return;
    ++nacks_sent_;
    telemetry::Hub& hub = sim_.telemetry();
    if (hub.enabled()) {
      hub.registry().counter("core.backup.nacks").add();
      // Blame the newest span the primary minted for this object — that is
      // the update whose absence tripped the watchdog.
      hub.record(hub.latest_span(id), node(), telemetry::EventKind::kInstant,
                 rtpb_track(node()), "watchdog-nack", obj_tag(id, state->version) + " held");
    }
    if (!peers_.empty()) {
      send_to(peers_.front(), wire::encode(wire::RetransmitRequest{id, state->version}));
    }
    arm_watchdog(id);
  });
}

}  // namespace rtpb::core
