#include "core/admission.hpp"

#include <algorithm>

#include "sched/theory.hpp"
#include "util/log.hpp"

namespace rtpb::core {

namespace {

/// Tolerance matching sched::rm_utilization_test, so the aggregate check
/// accepts exactly what a freshly built task set would.
constexpr double kRmSlop = 1e-12;

}  // namespace

AdmissionController::AdmissionController(ServiceConfig config, Duration link_delay_bound)
    : config_(config), ell_(link_delay_bound) {
  RTPB_EXPECTS(ell_ >= Duration::zero());
  RTPB_EXPECTS(config_.slack_factor >= 1);
}

Duration AdmissionController::normal_period(const ObjectSpec& spec) const {
  if (config_.update_period_override > Duration::zero()) {
    return config_.update_period_override;
  }
  Duration period = sched::theory::update_period(spec.window(), ell_, config_.slack_factor);
  if (config_.variance_aware_admission) {
    // Lemma 2-style sufficient condition, stated on the window: staleness
    // peaks at p + r + v' + ℓ and v' ≤ r − e' (Eq. 2.1), so requiring
    //   r ≤ (δ − ℓ − p + e') / 2
    // keeps the backup inside its window for ANY phase variance the
    // transmission task can exhibit — the guarantee the paper's §4.2
    // admission gives up when the CPU runs close to the RM bound.
    const Duration cap =
        (spec.window() - ell_ - spec.client_period + spec.update_exec) / 2;
    period = std::min(period, cap);
  }
  return period;
}

Duration AdmissionController::tightest_constraint(ObjectId id) const {
  Duration tightest = Duration::max();
  for (const auto& c : constraints_) {
    if (c.first == id || c.second == id) tightest = std::min(tightest, c.delta);
  }
  return tightest;
}

std::optional<AdmissionError> AdmissionController::check(const ObjectSpec& spec) const {
  if (admitted_.contains(spec.id)) return AdmissionError::kDuplicate;

  if (spec.id == kInvalidObject || spec.client_period <= Duration::zero() ||
      spec.client_exec <= Duration::zero() || spec.update_exec <= Duration::zero() ||
      spec.delta_primary <= Duration::zero() || spec.delta_backup <= Duration::zero()) {
    return AdmissionError::kInvalidSpec;
  }
  if (!config_.admission_control_enabled) return std::nullopt;

  // (1) p_i ≤ δ_iP: with zero-variance update scheduling at the client
  // (paper §4.2), the primary copy stays inside δ_iP iff the client
  // period is within it.
  if (spec.client_period > spec.delta_primary) return AdmissionError::kPeriodExceedsDelta;
  // (2) window must exceed the communication delay bound.
  if (spec.window() <= ell_) return AdmissionError::kWindowTooSmall;

  const Duration period = normal_period(spec);
  if (period <= Duration::zero()) return AdmissionError::kWindowTooSmall;
  if (period < spec.update_exec) return AdmissionError::kUnschedulable;
  // The client task must itself be a valid periodic task (e ≤ p) before
  // the utilisation bound means anything.
  if (spec.client_exec > spec.client_period) return AdmissionError::kUnschedulable;

  // (3) RM schedulability of everything on the primary's CPU, judged at
  // the window-derived baseline periods each object was admitted with.
  // Compressed scheduling may then send *more* often with the spare
  // capacity — that is best-effort and must not block admission of
  // further objects.  The admitted set's contribution is the maintained
  // running aggregate, so the test is O(1) per candidate.
  const double total = util_sum_ + spec.client_exec.ratio(spec.client_period) +
                       spec.update_exec.ratio(period);
  const std::size_t n_tasks = 2 * (admitted_.size() + 1);
  if (total > sched::liu_layland_bound(n_tasks) + kRmSlop) {
    return AdmissionError::kUnschedulable;
  }
  return std::nullopt;
}

std::optional<ObjectSpec> AdmissionController::suggest_alternative(const ObjectSpec& spec) const {
  if (spec.id == kInvalidObject || admitted_.contains(spec.id) ||
      spec.client_period <= Duration::zero() || spec.client_exec <= Duration::zero() ||
      spec.update_exec <= Duration::zero()) {
    return std::nullopt;  // nothing sensible to negotiate from
  }
  ObjectSpec cand = spec;
  // Satisfy (1): the primary constraint cannot be tighter than the rate
  // the client is willing to write at.
  cand.delta_primary = std::max(cand.delta_primary, cand.client_period);
  // Satisfy (2) and leave room for the transmission task: window w needs
  // (w − ℓ)/slack ≥ e', i.e. w ≥ ℓ + slack·e' — with margin so the
  // schedulability test has something to work with.
  const Duration min_window = ell_ + (spec.update_exec * config_.slack_factor) * 4;
  if (cand.window() < min_window) cand.delta_backup = cand.delta_primary + min_window;

  // Satisfy (3): halve the demanded rates (doubling periods and windows)
  // until the set becomes schedulable.  Give up after 1:64 — a client
  // asked for orders of magnitude more than the server can carry.
  for (int attempt = 0; attempt < 7; ++attempt) {
    if (!check(cand).has_value()) return cand;
    const Duration window = cand.window();
    cand.client_period = cand.client_period * 2;
    cand.delta_primary = std::max(cand.delta_primary * 2, cand.client_period);
    cand.delta_backup = cand.delta_primary + window * 2;
  }
  return std::nullopt;
}

AdmissionResult AdmissionController::admit(const ObjectSpec& spec) {
  if (const auto error = check(spec)) {
    AdmissionRejection rejection;
    rejection.code = *error;
    rejection.reason = admission_error_name(*error);
    if (*error != AdmissionError::kDuplicate && *error != AdmissionError::kInvalidSpec) {
      rejection.suggestion = suggest_alternative(spec);
    }
    return rejection;
  }

  Duration period = normal_period(spec);
  if (period <= Duration::zero()) period = spec.client_period;  // checks off: best effort
  if (period < spec.update_exec) period = spec.update_exec;

  Admitted entry;
  entry.spec = spec;
  entry.baseline = period;
  // A new id cannot be referenced by any existing constraint (constraints
  // require both members admitted and are erased with them), so the
  // effective period starts at the baseline — no constraint scan needed.
  entry.effective = period;
  entry.client_util = spec.client_exec.ratio(spec.client_period);
  entry.update_util = spec.update_exec.ratio(entry.effective);
  util_sum_ += entry.client_util;
  util_sum_ += entry.update_util;
  client_util_sum_ += entry.client_util;

  if (config_.update_scheduling == UpdateScheduling::kCompressed) {
    // The new object's own compressed rate follows from the aggregates in
    // O(1); everyone else's share shrank too, but rewriting the whole map
    // is deferred to the next period read (materialize_compressed).
    update_periods_[spec.id] = compressed_period(entry);
    compressed_stale_ = !admitted_.empty();
  } else {
    update_periods_[spec.id] = entry.effective;
  }
  admitted_.emplace(spec.id, std::move(entry));
  return AdmissionDecision{update_periods_[spec.id]};
}

void AdmissionController::remove(ObjectId id) {
  auto it = admitted_.find(id);
  if (it == admitted_.end()) return;
  util_sum_ -= it->second.client_util;
  util_sum_ -= it->second.update_util;
  client_util_sum_ -= it->second.client_util;
  admitted_.erase(it);
  update_periods_.erase(id);

  // Erase every constraint referencing the removed object, remembering the
  // surviving partners: each gets its period re-derived from its own
  // frozen baseline and whatever constraints remain, so a tightening
  // imposed by a now-gone δ_ij does not pin the survivor forever.
  std::vector<ObjectId> partners;
  std::erase_if(constraints_, [&](const InterObjectConstraint& c) {
    if (c.first != id && c.second != id) return false;
    const ObjectId partner = c.first == id ? c.second : c.first;
    if (partner != id && admitted_.contains(partner)) partners.push_back(partner);
    return true;
  });
  for (const ObjectId partner : partners) refresh_effective(partner);

  if (config_.update_scheduling == UpdateScheduling::kCompressed) compressed_stale_ = true;
}

void AdmissionController::refresh_effective(ObjectId id) {
  auto it = admitted_.find(id);
  if (it == admitted_.end()) return;
  Admitted& entry = it->second;
  const Duration effective = std::min(entry.baseline, tightest_constraint(id));
  if (effective == entry.effective) return;
  util_sum_ -= entry.update_util;
  entry.effective = effective;
  entry.update_util = entry.spec.update_exec.ratio(effective);
  util_sum_ += entry.update_util;
  if (config_.update_scheduling == UpdateScheduling::kCompressed) {
    compressed_stale_ = true;  // the constraint cap on this object moved
  } else {
    update_periods_[id] = effective;
  }
}

AdmissionStatus AdmissionController::check_constraint(const InterObjectConstraint& c) const {
  auto it_i = admitted_.find(c.first);
  auto it_j = admitted_.find(c.second);
  if (it_i == admitted_.end() || it_j == admitted_.end()) {
    return Error<AdmissionError>{AdmissionError::kUnknownObject,
                                 "inter-object constraint names unregistered object"};
  }
  if (c.delta <= Duration::zero()) {
    return Error<AdmissionError>{AdmissionError::kInvalidSpec, "non-positive delta_ij"};
  }
  if (!config_.admission_control_enabled) return {};

  // §3 / Theorem 6 with zero phase variance: both client periods must be
  // within δ_ij at the primary ...
  if (it_i->second.spec.client_period > c.delta ||
      it_j->second.spec.client_period > c.delta) {
    return Error<AdmissionError>{AdmissionError::kInterObjectViolation,
                                 "client period exceeds inter-object bound"};
  }
  // ... and both transmission periods within δ_ij at the backup; tighten
  // them if the constraint is stricter than what they run at.  The RM
  // re-check folds only the two affected objects' utilisation deltas into
  // the running aggregate (judged at baselines, like admission).
  std::vector<const Admitted*> members{&it_i->second};
  if (c.first != c.second) members.push_back(&it_j->second);
  double total = util_sum_;
  for (const Admitted* m : members) {
    const Duration tightened = std::min(m->effective, c.delta);
    if (tightened < m->spec.update_exec) {
      return Error<AdmissionError>{AdmissionError::kInterObjectViolation,
                                   "inter-object bound tighter than update execution time"};
    }
    total += m->spec.update_exec.ratio(tightened) - m->update_util;
  }
  if (total > sched::liu_layland_bound(2 * admitted_.size()) + kRmSlop) {
    return Error<AdmissionError>{AdmissionError::kUnschedulable,
                                 "tightened update task set fails RM schedulability"};
  }
  return {};
}

AdmissionStatus AdmissionController::add_constraint(const InterObjectConstraint& c) {
  AdmissionStatus status = check_constraint(c);
  if (!status.ok()) return status;
  if (!config_.admission_control_enabled) {
    constraints_.push_back(c);
    return {};
  }

  auto it_i = admitted_.find(c.first);
  auto it_j = admitted_.find(c.second);
  std::vector<Admitted*> members{&it_i->second};
  if (c.first != c.second) members.push_back(&it_j->second);
  for (Admitted* m : members) {
    const Duration tightened = std::min(m->effective, c.delta);
    util_sum_ -= m->update_util;
    m->effective = tightened;
    m->update_util = m->spec.update_exec.ratio(tightened);
    util_sum_ += m->update_util;
  }
  constraints_.push_back(c);
  if (config_.update_scheduling == UpdateScheduling::kCompressed) {
    compressed_stale_ = true;
  } else {
    update_periods_[c.first] = it_i->second.effective;
    update_periods_[c.second] = it_j->second.effective;
  }
  return {};
}

void AdmissionController::remove_constraint(const InterObjectConstraint& c) {
  auto match = std::find_if(constraints_.begin(), constraints_.end(),
                            [&c](const InterObjectConstraint& have) {
                              return have.first == c.first && have.second == c.second &&
                                     have.delta == c.delta;
                            });
  if (match == constraints_.end()) return;
  constraints_.erase(match);
  refresh_effective(c.first);
  if (c.second != c.first) refresh_effective(c.second);
}

Duration AdmissionController::compressed_period(const Admitted& a) const {
  // Compressed scheduling (§5.3): update transmissions consume all spare
  // capacity up to the configured target, shared equally among objects.
  // The admitted count / client-utilisation aggregates make this O(1) per
  // object.  NOTE: callers fold the object being priced into the
  // aggregates first.
  const double spare =
      std::max(0.05, config_.compressed_target_utilization - client_util_sum_);
  const double per_object =
      spare / static_cast<double>(std::max<std::size_t>(1, admitted_.size() + 1));
  Duration r = a.spec.update_exec.scaled(1.0 / per_object);
  r = std::max(r, a.spec.update_exec);  // never below the job's own length
  // Inter-object constraints and the window-derived baseline still cap the
  // period: compressed scheduling spends spare capacity to send MORE often
  // than the window demands, never less — when client load eats the spare,
  // the equal split must not be allowed to stretch r past the §4.3 period
  // the object's window was admitted against.
  r = std::min(r, a.effective);
  return r;
}

void AdmissionController::materialize_compressed() const {
  if (!compressed_stale_) return;
  compressed_stale_ = false;
  const double spare =
      std::max(0.05, config_.compressed_target_utilization - client_util_sum_);
  const double per_object = spare / static_cast<double>(std::max<std::size_t>(1, admitted_.size()));
  for (const auto& [id, a] : admitted_) {
    Duration r = a.spec.update_exec.scaled(1.0 / per_object);
    r = std::max(r, a.spec.update_exec);
    r = std::min(r, a.effective);
    update_periods_[id] = r;
  }
}

Duration AdmissionController::update_period(ObjectId id) const {
  materialize_compressed();
  auto it = update_periods_.find(id);
  RTPB_EXPECTS(it != update_periods_.end());
  return it->second;
}

double AdmissionController::total_utilization() const {
  materialize_compressed();
  double u = 0.0;
  for (const auto& [id, a] : admitted_) {
    u += a.client_util;
    u += a.spec.update_exec.ratio(update_periods_.at(id));
  }
  return u;
}

}  // namespace rtpb::core
