#include "core/admission.hpp"

#include <algorithm>

#include "sched/theory.hpp"
#include "util/log.hpp"

namespace rtpb::core {

AdmissionController::AdmissionController(ServiceConfig config, Duration link_delay_bound)
    : config_(config), ell_(link_delay_bound) {
  RTPB_EXPECTS(ell_ >= Duration::zero());
  RTPB_EXPECTS(config_.slack_factor >= 1);
}

Duration AdmissionController::normal_period(const ObjectSpec& spec) const {
  if (config_.update_period_override > Duration::zero()) {
    return config_.update_period_override;
  }
  Duration period = sched::theory::update_period(spec.window(), ell_, config_.slack_factor);
  if (config_.variance_aware_admission) {
    // Lemma 2-style sufficient condition, stated on the window: staleness
    // peaks at p + r + v' + ℓ and v' ≤ r − e' (Eq. 2.1), so requiring
    //   r ≤ (δ − ℓ − p + e') / 2
    // keeps the backup inside its window for ANY phase variance the
    // transmission task can exhibit — the guarantee the paper's §4.2
    // admission gives up when the CPU runs close to the RM bound.
    const Duration cap =
        (spec.window() - ell_ - spec.client_period + spec.update_exec) / 2;
    period = std::min(period, cap);
  }
  return period;
}

Duration AdmissionController::tightest_constraint(ObjectId id) const {
  Duration tightest = Duration::max();
  for (const auto& c : constraints_) {
    if (c.first == id || c.second == id) tightest = std::min(tightest, c.delta);
  }
  return tightest;
}

bool AdmissionController::schedulable(const std::map<ObjectId, Duration>& periods,
                                      const ObjectSpec* extra) const {
  sched::TaskSet tasks;
  sched::TaskId next = 1;
  auto add = [&tasks, &next](Duration period, Duration exec) {
    sched::TaskSpec t;
    t.id = next++;
    t.period = period;
    t.wcet = exec;
    if (!t.valid()) return false;
    tasks.push_back(t);
    return true;
  };
  for (const auto& [id, spec] : specs_) {
    if (!add(spec.client_period, spec.client_exec)) return false;
    auto it = periods.find(id);
    RTPB_ASSERT(it != periods.end());
    if (!add(it->second, spec.update_exec)) return false;
  }
  if (extra != nullptr) {
    if (!add(extra->client_period, extra->client_exec)) return false;
    // The candidate object's transmission period: its normal period,
    // already merged into `periods` by the caller when needed; here the
    // caller passes it via `periods` only for admitted ids, so add the
    // candidate explicitly.
    if (!add(normal_period(*extra), extra->update_exec)) return false;
  }
  // The paper's §4.2 admission runs "a schedulability test based on the
  // rate-monotonic scheduling algorithm [Liu & Layland]" — the utilisation
  // bound.  It is deliberately conservative: staying under n(2^{1/n}-1)
  // keeps client response times low (Figure 6), which exact response-time
  // analysis (available as sched::rm_exact_test) would not.
  return sched::rm_utilization_test(tasks);
}

std::optional<AdmissionError> AdmissionController::check(const ObjectSpec& spec) const {
  if (specs_.contains(spec.id)) return AdmissionError::kDuplicate;

  if (spec.id == kInvalidObject || spec.client_period <= Duration::zero() ||
      spec.client_exec <= Duration::zero() || spec.update_exec <= Duration::zero() ||
      spec.delta_primary <= Duration::zero() || spec.delta_backup <= Duration::zero()) {
    return AdmissionError::kInvalidSpec;
  }
  if (!config_.admission_control_enabled) return std::nullopt;

  // (1) p_i ≤ δ_iP: with zero-variance update scheduling at the client
  // (paper §4.2), the primary copy stays inside δ_iP iff the client
  // period is within it.
  if (spec.client_period > spec.delta_primary) return AdmissionError::kPeriodExceedsDelta;
  // (2) window must exceed the communication delay bound.
  if (spec.window() <= ell_) return AdmissionError::kWindowTooSmall;

  const Duration period = normal_period(spec);
  if (period <= Duration::zero()) return AdmissionError::kWindowTooSmall;
  if (period < spec.update_exec) return AdmissionError::kUnschedulable;

  // (3) RM schedulability of everything on the primary's CPU, judged at
  // the window-derived baseline periods.  Compressed scheduling may then
  // send *more* often with the spare capacity — that is best-effort and
  // must not block admission of further objects.
  std::map<ObjectId, Duration> baseline;
  for (const auto& [id, s] : specs_) {
    baseline[id] = std::min(normal_period(s), tightest_constraint(id));
  }
  if (!schedulable(baseline, &spec)) return AdmissionError::kUnschedulable;
  return std::nullopt;
}

std::optional<ObjectSpec> AdmissionController::suggest_alternative(const ObjectSpec& spec) const {
  if (spec.id == kInvalidObject || specs_.contains(spec.id) ||
      spec.client_period <= Duration::zero() || spec.client_exec <= Duration::zero() ||
      spec.update_exec <= Duration::zero()) {
    return std::nullopt;  // nothing sensible to negotiate from
  }
  ObjectSpec cand = spec;
  // Satisfy (1): the primary constraint cannot be tighter than the rate
  // the client is willing to write at.
  cand.delta_primary = std::max(cand.delta_primary, cand.client_period);
  // Satisfy (2) and leave room for the transmission task: window w needs
  // (w − ℓ)/slack ≥ e', i.e. w ≥ ℓ + slack·e' — with margin so the
  // schedulability test has something to work with.
  const Duration min_window = ell_ + (spec.update_exec * config_.slack_factor) * 4;
  if (cand.window() < min_window) cand.delta_backup = cand.delta_primary + min_window;

  // Satisfy (3): halve the demanded rates (doubling periods and windows)
  // until the set becomes schedulable.  Give up after 1:64 — a client
  // asked for orders of magnitude more than the server can carry.
  for (int attempt = 0; attempt < 7; ++attempt) {
    if (!check(cand).has_value()) return cand;
    cand.client_period = cand.client_period * 2;
    cand.delta_primary = std::max(cand.delta_primary * 2, cand.client_period);
    cand.delta_backup = cand.delta_primary + cand.window() * 2;
  }
  return std::nullopt;
}

AdmissionResult AdmissionController::admit(const ObjectSpec& spec) {
  if (const auto error = check(spec)) {
    AdmissionRejection rejection;
    rejection.code = *error;
    rejection.reason = admission_error_name(*error);
    if (*error != AdmissionError::kDuplicate && *error != AdmissionError::kInvalidSpec) {
      rejection.suggestion = suggest_alternative(spec);
    }
    return rejection;
  }

  Duration period = normal_period(spec);
  if (period <= Duration::zero()) period = spec.client_period;  // checks off: best effort
  if (period < spec.update_exec) period = spec.update_exec;

  specs_.emplace(spec.id, spec);
  update_periods_[spec.id] = period;
  if (config_.update_scheduling == UpdateScheduling::kCompressed) recompute_compressed();
  return AdmissionDecision{update_periods_[spec.id]};
}

void AdmissionController::remove(ObjectId id) {
  specs_.erase(id);
  update_periods_.erase(id);
  std::erase_if(constraints_, [id](const InterObjectConstraint& c) {
    return c.first == id || c.second == id;
  });
  if (config_.update_scheduling == UpdateScheduling::kCompressed) recompute_compressed();
}

AdmissionStatus AdmissionController::add_constraint(const InterObjectConstraint& c) {
  auto it_i = specs_.find(c.first);
  auto it_j = specs_.find(c.second);
  if (it_i == specs_.end() || it_j == specs_.end()) {
    return Error<AdmissionError>{AdmissionError::kUnknownObject,
                                 "inter-object constraint names unregistered object"};
  }
  if (c.delta <= Duration::zero()) {
    return Error<AdmissionError>{AdmissionError::kInvalidSpec, "non-positive delta_ij"};
  }
  if (!config_.admission_control_enabled) {
    constraints_.push_back(c);
    return {};
  }

  // §3 / Theorem 6 with zero phase variance: both client periods must be
  // within δ_ij at the primary ...
  if (it_i->second.client_period > c.delta || it_j->second.client_period > c.delta) {
    return Error<AdmissionError>{AdmissionError::kInterObjectViolation,
                                 "client period exceeds inter-object bound"};
  }
  // ... and both transmission periods within δ_ij at the backup; tighten
  // them if the constraint is stricter than the window-derived period.
  std::map<ObjectId, Duration> tightened = update_periods_;
  for (ObjectId id : {c.first, c.second}) {
    Duration& r = tightened[id];
    r = std::min(r, c.delta);
    if (r < specs_.at(id).update_exec) {
      return Error<AdmissionError>{AdmissionError::kInterObjectViolation,
                                   "inter-object bound tighter than update execution time"};
    }
  }
  if (!schedulable(tightened, nullptr)) {
    return Error<AdmissionError>{AdmissionError::kUnschedulable,
                                 "tightened update task set fails RM schedulability"};
  }
  update_periods_ = std::move(tightened);
  constraints_.push_back(c);
  return {};
}

void AdmissionController::recompute_compressed() {
  // Compressed scheduling (§5.3): update transmissions consume all spare
  // capacity up to the configured target, shared equally among objects.
  if (specs_.empty()) return;
  double client_util = 0.0;
  for (const auto& [id, spec] : specs_) {
    client_util += spec.client_exec.ratio(spec.client_period);
  }
  const double spare = std::max(0.05, config_.compressed_target_utilization - client_util);
  const double per_object = spare / static_cast<double>(specs_.size());
  for (auto& [id, spec] : specs_) {
    Duration r = spec.update_exec.scaled(1.0 / per_object);
    r = std::max(r, spec.update_exec);  // never below the job's own length
    // Inter-object constraints still cap the period.
    r = std::min(r, tightest_constraint(id));
    update_periods_[id] = r;
  }
}

Duration AdmissionController::update_period(ObjectId id) const {
  auto it = update_periods_.find(id);
  RTPB_EXPECTS(it != update_periods_.end());
  return it->second;
}

double AdmissionController::total_utilization() const {
  double u = 0.0;
  for (const auto& [id, spec] : specs_) {
    u += spec.client_exec.ratio(spec.client_period);
    u += spec.update_exec.ratio(update_periods_.at(id));
  }
  return u;
}

}  // namespace rtpb::core
