#include "core/active.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace rtpb::core {

ActiveReplicationService::ActiveReplicationService(Params params)
    : params_(params),
      sim_(params.seed),
      network_(sim_),
      loss_rng_(sim_.rng().fork()),
      leader_cpu_(sim_, params.cpu_policy, "active-leader-cpu"),
      value_rng_(sim_.rng().fork()) {
  RTPB_EXPECTS(params_.followers >= 1);
  leader_stack_ = std::make_unique<xkernel::HostStack>(network_);
  leader_stack_->udp().bind(kActivePort,
                            [this](xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
                              on_leader_message(msg, attrs);
                            });
  for (std::size_t i = 0; i < params_.followers; ++i) {
    auto follower = std::make_unique<Follower>();
    follower->stack = std::make_unique<xkernel::HostStack>(network_);
    network_.connect(leader_stack_->node(), follower->stack->node(), params_.link);
    follower->stack->udp().bind(
        kActivePort, [this, i](xkernel::Message& msg, const xkernel::MsgAttrs& attrs) {
          on_follower_message(i, msg, attrs);
        });
    follower_by_node_[follower->stack->node()] = i;
    followers_.push_back(std::move(follower));
  }
}

ActiveReplicationService::~ActiveReplicationService() = default;

void ActiveReplicationService::start() {
  RTPB_EXPECTS(!started_);
  started_ = true;
  leader_cpu_.start(sim_.now());
}

void ActiveReplicationService::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

void ActiveReplicationService::add_object(const ObjectSpec& spec) {
  RTPB_EXPECTS(started_);
  RTPB_EXPECTS(spec.client_period > Duration::zero());
  RTPB_EXPECTS(spec.client_exec > Duration::zero());
  specs_.push_back(spec);
  leader_store_.insert(spec);
  for (auto& f : followers_) f->store.insert(spec);

  sched::TaskSpec task;
  task.name = "active-client-" + std::to_string(spec.id);
  task.period = spec.client_period;
  task.wcet = spec.client_exec;
  const ObjectSpec captured = spec;
  client_tasks_.push_back(
      leader_cpu_.add_task(task, [this, captured](const sched::JobInfo& info) {
        Bytes value(captured.size_bytes);
        for (auto& b : value) b = static_cast<std::uint8_t>(value_rng_.uniform(0, 255));
        leader_write(captured.id, std::move(value), info);
      }));
}

void ActiveReplicationService::stop_clients() {
  for (sched::TaskId id : client_tasks_) leader_cpu_.remove_task(id);
  client_tasks_.clear();
}

void ActiveReplicationService::leader_write(ObjectId id, Bytes value,
                                            const sched::JobInfo& info) {
  // The leader is the sequencer: apply locally, then seek agreement.
  const std::uint64_t seq = next_sequence_++;
  ++writes_started_;
  leader_store_.write(id, value, info.finish);

  PendingWrite w;
  w.object = id;
  w.started = info.release;
  w.value = std::move(value);
  w.timestamp = info.finish;
  w.acked.assign(followers_.size(), false);
  auto [it, inserted] = pending_.emplace(seq, std::move(w));
  RTPB_ASSERT(inserted);
  multicast(it->second, seq, /*only_unacked=*/false);
  arm_retransmit(seq);
}

void ActiveReplicationService::multicast(const PendingWrite& w, std::uint64_t seq,
                                         bool only_unacked) {
  wire::ActivePrepare prepare;
  prepare.sequence = seq;
  prepare.object = w.object;
  prepare.timestamp = w.timestamp;
  prepare.value = w.value;
  // Encode once; every follower's copy shares the body buffer.
  const xkernel::Message frame{wire::encode(prepare)};
  for (std::size_t i = 0; i < followers_.size(); ++i) {
    if (only_unacked && w.acked[i]) continue;
    ++prepares_sent_;
    if (loss_rng_.bernoulli(params_.message_loss_probability)) continue;
    leader_stack_->send_message(kActivePort, {followers_[i]->stack->node(), kActivePort}, frame);
  }
}

void ActiveReplicationService::arm_retransmit(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  it->second.retransmit = sim_.schedule_after(params_.retransmit_timeout, [this, seq] {
    auto pending_it = pending_.find(seq);
    if (pending_it == pending_.end()) return;
    ++retransmissions_;
    multicast(pending_it->second, seq, /*only_unacked=*/true);
    arm_retransmit(seq);
  });
}

void ActiveReplicationService::on_follower_message(std::size_t follower_idx,
                                                   xkernel::Message& msg,
                                                   const xkernel::MsgAttrs& /*attrs*/) {
  const auto decoded = wire::decode(msg.contents());
  if (!decoded || decoded->type != wire::MsgType::kActivePrepare) return;
  Follower& f = *followers_[follower_idx];
  const wire::ActivePrepare& prepare = *decoded->active_prepare;
  const bool already_applied = prepare.sequence < f.next_to_apply;
  if (!already_applied) {
    f.holdback.emplace(prepare.sequence, prepare);
    apply_in_order(f);  // acks every newly applied sequence
  } else {
    // Duplicate of an applied write (the original ack was lost): re-ack.
    wire::ActiveAck ack{prepare.sequence};
    if (!loss_rng_.bernoulli(params_.message_loss_probability)) {
      f.stack->send_datagram(kActivePort, {leader_stack_->node(), kActivePort},
                             wire::encode(ack));
    }
  }
}

void ActiveReplicationService::apply_in_order(Follower& f) {
  while (true) {
    auto it = f.holdback.find(f.next_to_apply);
    if (it == f.holdback.end()) break;
    const wire::ActivePrepare& p = it->second;
    f.store.apply(p.object, f.store.get(p.object).version + 1, p.timestamp, p.value, sim_.now());
    ++f.next_to_apply;
    // Ack the newly applied sequence.
    wire::ActiveAck ack{it->first};
    if (!loss_rng_.bernoulli(params_.message_loss_probability)) {
      f.stack->send_datagram(kActivePort, {leader_stack_->node(), kActivePort},
                             wire::encode(ack));
    }
    f.holdback.erase(it);
  }
}

void ActiveReplicationService::on_leader_message(xkernel::Message& msg,
                                                 const xkernel::MsgAttrs& attrs) {
  const auto decoded = wire::decode(msg.contents());
  if (!decoded || decoded->type != wire::MsgType::kActiveAck) return;
  auto follower_it = follower_by_node_.find(attrs.src.node);
  if (follower_it == follower_by_node_.end()) return;
  const std::size_t idx = follower_it->second;

  auto it = pending_.find(decoded->active_ack->sequence);
  if (it == pending_.end()) return;  // already completed
  PendingWrite& w = it->second;
  ++acks_received_;
  if (w.acked[idx]) return;
  w.acked[idx] = true;
  ++w.acks;
  if (w.acks == followers_.size()) {
    // Agreement reached: the client response completes now.
    response_times_.add(sim_.now() - w.started);
    ++writes_completed_;
    w.retransmit.cancel();
    pending_.erase(it);
  }
}

const ObjectStore& ActiveReplicationService::follower_store(std::size_t i) const {
  RTPB_EXPECTS(i < followers_.size());
  return followers_[i]->store;
}

bool ActiveReplicationService::replicas_identical() const {
  for (const auto& spec : specs_) {
    const ObjectState& lead = leader_store_.get(spec.id);
    for (const auto& f : followers_) {
      const ObjectState& copy = f->store.get(spec.id);
      if (copy.value != lead.value || copy.origin_timestamp != lead.origin_timestamp) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rtpb::core
