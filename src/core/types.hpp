// Object model and service-level configuration for the RTPB replication
// service.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/cpu.hpp"
#include "util/time.hpp"

namespace rtpb::core {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kInvalidObject = 0xFFFFFFFF;

/// What a client declares when registering an object with the service
/// (paper §4.2): its update period, execution costs, and the external
/// temporal constraints at the primary and at the backup.
struct ObjectSpec {
  ObjectId id = kInvalidObject;
  std::string name;
  std::uint32_t size_bytes = 64;   ///< payload size of one update

  Duration client_period{};        ///< p_i: client sensing/update period
  Duration client_exec{};          ///< e_i: cost of one client update job
  Duration update_exec{};          ///< e'_i: cost of one backup-transmission job

  Duration delta_primary{};        ///< δ_iP: external constraint at the primary
  Duration delta_backup{};         ///< δ_iB: external constraint at the backup

  /// Window of inconsistency between primary and backup: δ_i = δ_iB − δ_iP.
  [[nodiscard]] Duration window() const { return delta_backup - delta_primary; }
};

/// Inter-object temporal constraint δ_ij between two registered objects
/// (paper §3): |T_j(t) − T_i(t)| ≤ δ_ij must hold at both sites.
struct InterObjectConstraint {
  ObjectId first = kInvalidObject;
  ObjectId second = kInvalidObject;
  Duration delta{};
};

/// How the primary schedules update transmissions to the backup (§4.3,
/// §5.3).  Normal derives each period from the object's window; compressed
/// sends as often as spare CPU capacity allows; coupled is the
/// window-consistent baseline (Mehra et al.) the paper contrasts with —
/// every client write triggers a transmission job, so backup traffic
/// scales with the write rate instead of the window.
enum class UpdateScheduling { kNormal, kCompressed, kCoupled };

/// Admission-control outcomes, exposed so rejected clients can negotiate
/// an alternative quality of service (paper §4.2).
enum class AdmissionError {
  kInvalidSpec,            ///< malformed object parameters
  kPeriodExceedsDelta,     ///< p_i > δ_iP: client updates too slow for the constraint
  kWindowTooSmall,         ///< δ_iB − δ_iP ≤ ℓ: cannot out-run the network delay
  kUnschedulable,          ///< update task set fails the RM schedulability test
  kInterObjectViolation,   ///< δ_ij constraint unsatisfiable with these periods
  kUnknownObject,          ///< inter-object constraint names an unregistered object
  kDuplicate,              ///< object id already registered
};

[[nodiscard]] const char* admission_error_name(AdmissionError e);

/// Service-level configuration shared by primary and backup.
struct ServiceConfig {
  sched::Policy cpu_policy = sched::Policy::kRateMonotonic;
  UpdateScheduling update_scheduling = UpdateScheduling::kNormal;
  /// Slack factor applied to the §4.3 transmission period: period =
  /// (δ_i − ℓ) / slack_factor.  The paper uses 2 to ride out one loss.
  std::int64_t slack_factor = 2;
  /// Experiment knob: force every object's transmission period to this
  /// value (bypasses the window formula; still subject to inter-object
  /// tightening).  Zero disables.  Used by the consistency-frontier bench
  /// to sweep r_i across the Theorem 4/5 boundary.
  Duration update_period_override{};
  /// Extension: additionally cap each transmission period with Lemma 2's
  /// sufficient condition r ≤ (δ_B + e + e' − ℓ)/2 − p, which absorbs the
  /// worst-case phase variance of both tasks.  The paper's §4.2 admission
  /// (default, false) ignores v/v' and can suffer brief window violations
  /// when the CPU runs near its admission bound — see
  /// bench/abl_variance_admission.
  bool variance_aware_admission = false;
  /// Target CPU utilisation for compressed scheduling's update tasks.
  double compressed_target_utilization = 0.85;
  /// Probability that an UPDATE (or retransmission) from the primary is
  /// dropped before reaching the wire.  This reproduces the paper's §5
  /// methodology: loss is injected on the update stream while control
  /// traffic (heartbeats, registration) still flows, so the service is
  /// degraded, not partitioned.  Use net::LinkParams::loss_probability for
  /// genuine link faults instead.
  double update_loss_probability = 0.0;
  /// Backup acknowledges every update (ablation A1); default off per §4.3.
  bool ack_every_update = false;
  /// Run RTPB above FRAGLITE so updates larger than the link MTU are
  /// fragmented and reassembled (x-kernel BLAST's role).  Disabling it
  /// makes >MTU objects silently unreplicable — see the object-size
  /// supplementary experiment.
  bool enable_fragmentation = true;
  /// Payload bytes per fragment (header overhead rides on top; keep below
  /// the link MTU minus ~50 bytes of stacked headers).
  std::size_t fragment_payload = 1400;
  /// Primary retransmits an unacked update after this many of the object's
  /// transmission periods (only in ack mode).
  std::int64_t ack_timeout_periods = 2;

  /// Coalesce update transmissions that fall due within
  /// `update_batch_window` of each other into one kUpdateBatch frame per
  /// peer: the frame tag, epoch, UDPLITE checksum and per-frame simulation
  /// events are paid once per window instead of once per object.  The
  /// window bounds the added staging delay and must stay well inside the
  /// admission slack (δ_i − ℓ)/2; the 2 ms default is an order of
  /// magnitude below the paper's tightest windows.  Retransmissions and
  /// targeted (lagging-peer) sends always go out as single kUpdate frames.
  /// NOTE: toggling this changes the wire byte stream, so chaos trace
  /// digests shift vs pre-batch builds (same-seed reproducibility is
  /// unaffected) — same precedent as the epoch-fencing field addition.
  bool batch_updates = true;
  Duration update_batch_window = millis(2);

  // Failure detection (§4.4).
  Duration ping_period = millis(100);
  /// Per-ping ack timeout.  Zero means "derive from the link": the server
  /// uses clamp(4ℓ, 5 ms, ping_period), where ℓ is the link delay bound
  /// for a full frame, so small-ℓ configs fail over faster and large-ℓ
  /// configs stop false-suspecting.  A non-zero value pins the timeout.
  Duration ping_ack_timeout{};
  std::uint32_t ping_max_misses = 3;

  /// Backup requests retransmission after watchdog_factor × r_i without an
  /// update for an object (§4.3 backup-triggered retransmission).
  std::int64_t watchdog_factor = 3;

  bool admission_control_enabled = true;

  /// Epoch (incarnation) fencing: every RTPB message carries the sender's
  /// replication epoch, minted at promote(); receivers reject traffic from
  /// lower epochs and a deposed primary that learns of a higher epoch
  /// steps down.  Disabling this restores the pre-fencing split-brain
  /// behaviour (a deposed primary's stale updates are applied) — used by
  /// the chaos `split-brain` sabotage self-test to prove the
  /// no-cross-epoch-apply oracle catches it.
  bool epoch_fencing = true;

  // Graceful degradation under overload (PR 5).

  /// Master switch for the DegradationController: overload detection from
  /// ack-lag EWMAs / staged-queue depth / missed transmission windows,
  /// slack-aware shedding of batched updates, and runtime QoS
  /// renegotiation (kConstraintDowngrade / kConstraintRestore).  Turning
  /// this off restores the pre-degradation "violate silently" behaviour —
  /// the chaos `no-shedding` sabotage self-test relies on that to prove
  /// the no-silent-violation oracle catches it.
  bool degradation_enabled = true;
  /// Drive FailureDetector ack timeouts and update-ack deadlines from a
  /// Jacobson-style RTT estimator (SRTT + 4·RTTVAR) instead of the fixed
  /// config values.  Estimates are clamped to [derived floor, ping_period].
  bool adaptive_timeouts = true;
  /// Overload trips when the smoothed ack RTT exceeds this multiple of the
  /// link's no-queueing baseline (2ℓ), or when the staged send queue holds
  /// more than `overload_queue_depth` updates, or when a transmission
  /// window was missed.  Hysteresis: the controller must observe
  /// `degrade_restore_hold` of calm before restoring original windows.
  double overload_rtt_factor = 4.0;
  std::size_t overload_queue_depth = 16;
  /// Minimum calm time before a downgraded object's original window is
  /// restored (also floored at one failure-detection period so restore can
  /// never flap within a single detector cycle).
  Duration degrade_restore_hold = millis(500);
  /// Window multiplier used when the controller loosens an object's
  /// constraint: new δ_iB = δ_iP + window × degrade_window_factor (then
  /// passed through the admission controller's suggestion machinery).
  std::int64_t degrade_window_factor = 2;
  /// State-transfer / registration replication retries back off
  /// exponentially (base ping_period × 2, doubled per attempt, seeded
  /// jitter) and give up after this many attempts, reporting the silent
  /// peer as suspected-down instead of retrying forever.
  std::uint32_t transfer_retry_limit = 10;
};

}  // namespace rtpb::core
