// Active (state-machine) replication baseline.
//
// The paper's §1/§6.1 contrast: in active replication every write is
// applied atomically to all replicas, so a client response waits for an
// agreement round — higher response latency and message cost than RTPB's
// passive scheme, in exchange for identical replicas.  This module
// implements the baseline so the trade-off can be measured on the same
// substrate: a sequencer-leader assigns global sequence numbers, multicasts
// PREPAREs over the x-kernel stack, followers apply strictly in sequence
// order and acknowledge, and the write completes ("responds to the
// client") once EVERY follower acked.  Lost prepares are retransmitted per
// lagging follower on a timeout.
//
// Compare with bench/abl_active_vs_passive.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/object_store.hpp"
#include "core/types.hpp"
#include "core/wire.hpp"
#include "net/network.hpp"
#include "sched/cpu.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "xkernel/graph.hpp"

namespace rtpb::core {

class ActiveReplicationService {
 public:
  struct Params {
    std::uint64_t seed = 1;
    net::LinkParams link;
    std::size_t followers = 1;  ///< replicas besides the leader
    sched::Policy cpu_policy = sched::Policy::kFifo;
    Duration retransmit_timeout = millis(20);
    /// Injected loss on PREPARE/ACK traffic (paper §5 methodology).
    double message_loss_probability = 0.0;
  };

  explicit ActiveReplicationService(Params params);
  ~ActiveReplicationService();

  ActiveReplicationService(const ActiveReplicationService&) = delete;
  ActiveReplicationService& operator=(const ActiveReplicationService&) = delete;

  void start();
  void run_for(Duration d);

  /// Register an object and start its periodic client writes on the
  /// leader's CPU (same workload shape as the RTPB experiments).
  void add_object(const ObjectSpec& spec);
  /// Stop issuing client writes (used to drain in-flight agreement before
  /// comparing replica states).
  void stop_clients();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const SampleSet& response_times() const { return response_times_; }
  [[nodiscard]] std::uint64_t writes_started() const { return writes_started_; }
  [[nodiscard]] std::uint64_t writes_completed() const { return writes_completed_; }
  [[nodiscard]] std::uint64_t prepares_sent() const { return prepares_sent_; }
  [[nodiscard]] std::uint64_t acks_received() const { return acks_received_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

  [[nodiscard]] const ObjectStore& leader_store() const { return leader_store_; }
  [[nodiscard]] const ObjectStore& follower_store(std::size_t i) const;
  /// All replicas hold identical versions for every object (call after
  /// stop_clients + a drain period).
  [[nodiscard]] bool replicas_identical() const;

 private:
  struct Follower {
    std::unique_ptr<xkernel::HostStack> stack;
    ObjectStore store;
    std::uint64_t next_to_apply = 1;
    std::map<std::uint64_t, wire::ActivePrepare> holdback;
  };
  struct PendingWrite {
    ObjectId object = kInvalidObject;
    TimePoint started{};
    Bytes value;
    TimePoint timestamp{};
    std::vector<bool> acked;  ///< per follower
    std::size_t acks = 0;
    sim::EventHandle retransmit;
  };

  void leader_write(ObjectId id, Bytes value, const sched::JobInfo& info);
  void multicast(const PendingWrite& w, std::uint64_t seq, bool only_unacked);
  void arm_retransmit(std::uint64_t seq);
  void on_follower_message(std::size_t follower_idx, xkernel::Message& msg,
                           const xkernel::MsgAttrs& attrs);
  void on_leader_message(xkernel::Message& msg, const xkernel::MsgAttrs& attrs);
  void apply_in_order(Follower& f);

  Params params_;
  sim::Simulator sim_;
  net::Network network_;
  Rng loss_rng_;
  std::unique_ptr<xkernel::HostStack> leader_stack_;
  sched::Cpu leader_cpu_;
  ObjectStore leader_store_;
  std::vector<std::unique_ptr<Follower>> followers_;
  std::map<net::NodeId, std::size_t> follower_by_node_;
  std::vector<ObjectSpec> specs_;
  std::vector<sched::TaskId> client_tasks_;
  Rng value_rng_;

  std::uint64_t next_sequence_ = 1;
  std::map<std::uint64_t, PendingWrite> pending_;
  SampleSet response_times_;
  std::uint64_t writes_started_ = 0;
  std::uint64_t writes_completed_ = 0;
  std::uint64_t prepares_sent_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t retransmissions_ = 0;
  bool started_ = false;

  static constexpr net::Port kActivePort = 6000;
};

}  // namespace rtpb::core
