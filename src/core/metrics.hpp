// Performability metrics (paper §5):
//   - client response time at the primary,
//   - average maximum primary–backup distance,
//   - duration of backup inconsistency.
//
// Distance semantics.  The distance at time t is the temporal staleness of
// the backup's copy relative to the primary's:
//     d_i(t) = T_i^P(t) − T_i^B(t)
// where both timestamps are expressed in primary (origin) time — T_i^B is
// the write time of the version the backup currently holds.  d_i is a
// step function that changes only at client writes (jumps up) and at
// backup applies (drops), so event-driven tracking captures its extrema
// exactly.  "Average maximum distance" is the per-object maximum of d_i
// averaged over objects, the paper's Figure 8–10 metric.
//
// Inconsistency (Figures 11/12): object i is *inconsistent at the backup*
// while d_i(t) exceeds its window δ_i = δ_iB − δ_iP.  If an update is
// lost, the backup stays inconsistent until the next applied update —
// exactly the paper's description.
#pragma once

#include <map>

#include "core/types.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace rtpb::core {

class Metrics {
 public:
  /// -- client response time ------------------------------------------------
  void record_response(Duration d) { response_times_.add(d.millis()); }
  [[nodiscard]] const SampleSet& response_times() const { return response_times_; }

  /// -- primary–backup distance & inconsistency ------------------------------
  /// Declare an object, its window δ_i (for inconsistency judgement) and
  /// its client write period p_i (for excess-distance normalisation).
  void track_object(ObjectId id, Duration window, Duration client_period = Duration::zero());
  void untrack_object(ObjectId id);

  /// The primary finished a client update at `ts` (T_i^P advances).
  void on_primary_write(ObjectId id, TimePoint ts);
  /// The backup applied a version whose primary-side timestamp is
  /// `origin_ts`, at backup-local time `now` (T_i^B advances).
  void on_backup_apply(ObjectId id, TimePoint origin_ts, TimePoint now);

  /// Re-evaluate every object's window violation at `now` without waiting
  /// for the next write/apply — the chaos harness's oracle observation
  /// point, so intervals open/close at the sampling instant.
  void poll(TimePoint now);

  /// Close out open violation intervals at end of run (call once before
  /// reading results).
  void finish(TimePoint now);
  /// Forget warm-up history (keeps tracked objects and current state).
  void reset_statistics();

  /// Mean over objects of max_t d_i(t), in ms.  Objects whose backup never
  /// applied anything contribute their full staleness relative to the
  /// primary's newest write.
  [[nodiscard]] double average_max_distance_ms() const;
  /// Like average_max_distance_ms but with each object's intrinsic
  /// one-write-period staleness subtracted: max(0, max d_i − p_i).  This is
  /// the staleness *replication* is responsible for — near zero when no
  /// update is ever lost, growing by one transmission period per
  /// consecutive loss (the paper's Figure 8 quantity).
  [[nodiscard]] double average_max_excess_distance_ms() const;
  /// Mean duration of a window-violation interval across objects, ms.
  [[nodiscard]] double mean_inconsistency_duration_ms() const;
  /// Total time spent out of window, summed over objects.
  [[nodiscard]] Duration total_inconsistency() const;
  [[nodiscard]] std::uint64_t inconsistency_intervals() const;

  /// Per-object introspection (tests).
  [[nodiscard]] Duration max_distance(ObjectId id) const;
  [[nodiscard]] bool in_violation(ObjectId id) const;
  /// Instantaneous d_i = T_i^P − T_i^B (zero until both sites have
  /// written) — the degradation controller's restore guard reads this to
  /// make sure the backup is genuinely caught up before tightening.
  [[nodiscard]] Duration current_distance(ObjectId id) const;
  /// The window currently judged against (tracks QoS downgrades).
  [[nodiscard]] Duration window_of(ObjectId id) const;

 private:
  struct ObjectTrack {
    Duration window{};
    Duration client_period{};
    TimePoint primary_ts{};        ///< latest T_i^P
    TimePoint backup_origin_ts{};  ///< origin of the version the backup holds
    bool primary_written = false;
    bool backup_applied = false;
    Duration max_distance{};
    IntervalRecorder inconsistency;
    void refresh(TimePoint now);
  };

  SampleSet response_times_;
  std::map<ObjectId, ObjectTrack> objects_;
};

}  // namespace rtpb::core
