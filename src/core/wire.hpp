// RTPB anchor-protocol wire format.
//
// The RTPB protocol sits above UDPLITE (paper Figure 5) and is therefore
// responsible for its own loss handling: updates carry object sequence
// numbers so the backup can detect gaps and request retransmission
// (paper §4.3 — no per-update acknowledgments by default).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "util/bytebuffer.hpp"
#include "util/time.hpp"

namespace rtpb::core::wire {

enum class MsgType : std::uint8_t {
  kUpdate = 1,           ///< primary → backup: object value + timestamp
  kUpdateAck = 2,        ///< backup → primary (ack mode only)
  kRetransmitRequest = 3,///< backup → primary: gap detected
  kPing = 4,             ///< either direction: heartbeat
  kPingAck = 5,
  kStateTransfer = 6,    ///< primary → recruited backup: full object table
  kStateTransferAck = 7,
  // Active-replication baseline (§6.1 comparison):
  kActivePrepare = 8,    ///< leader → replicas: sequenced write
  kActiveAck = 9,        ///< replica → leader: write applied
  kUpdateBatch = 10,     ///< primary → backup: coalesced object updates
  // Runtime QoS renegotiation (graceful degradation under overload):
  kConstraintDowngrade = 11,  ///< primary → backups/client: loosened window
  kConstraintRestore = 12,    ///< primary → backups/client: original window back
  // Sharded scale-out: cross-shard temporal-consistency exchange.
  kFrontier = 13,             ///< shard primary → peer shard primaries
  // Durable crash recovery: incremental rejoin of a restarted peer.
  kResyncRequest = 14,        ///< rejoining backup → primary: durable version vector
  kStateDelta = 15,           ///< primary → rejoining backup: dirty objects only
};

[[nodiscard]] const char* msg_type_name(MsgType t);

// Every RTPB message carries the sender's replication epoch (incarnation
// number, minted at promote()).  Receivers fence: traffic from a lower
// epoch is stale — it comes from a deposed primary or a not-yet-repointed
// backup — and must be rejected, not applied.  Epoch 0 means "unknown"
// (bootstrap: a freshly recruited standby that has not yet learned the
// cluster epoch) and is never fenced.  The field sits last in each struct
// so aggregate initializers written before epochs existed stay valid.

struct Update {
  ObjectId object = kInvalidObject;
  std::uint64_t version = 0;      ///< per-object sequence number
  TimePoint timestamp{};          ///< T_i^P: finish time of the client update
  bool retransmission = false;
  Bytes value;
  std::uint64_t epoch = 0;
};

struct UpdateAck {
  ObjectId object = kInvalidObject;
  std::uint64_t version = 0;
  std::uint64_t epoch = 0;
};

struct RetransmitRequest {
  ObjectId object = kInvalidObject;
  std::uint64_t have_version = 0;  ///< newest version the backup holds
  std::uint64_t epoch = 0;
};

/// One object's update inside a kUpdateBatch frame.  Batched entries are
/// never retransmissions (retransmissions go out as targeted kUpdate
/// singles), so the per-update retransmission flag is omitted.
struct UpdateBatchEntry {
  ObjectId object = kInvalidObject;
  std::uint64_t version = 0;
  TimePoint timestamp{};
  Bytes value;
};

/// All object updates due in the same transmission window, coalesced into
/// one frame per peer: the 1-byte tag, UDPLITE checksum, per-frame sim
/// event and epoch field are paid once per frame instead of once per
/// object.  The receiver applies entries strictly in order.
struct UpdateBatch {
  std::vector<UpdateBatchEntry> entries;
  std::uint64_t epoch = 0;
};

struct Ping {
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
};

struct PingAck {
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
};

/// One object's entry in a state transfer (spec + current state).  Carries
/// the primary's assigned transmission period r_i so the backup can size
/// its retransmission watchdog.
struct StateEntry {
  ObjectSpec spec;
  Duration update_period{};
  std::uint64_t version = 0;
  TimePoint timestamp{};
  Bytes value;
};

struct StateTransfer {
  std::uint64_t transfer_id = 0;
  std::vector<StateEntry> entries;
  std::vector<InterObjectConstraint> constraints;
  std::uint64_t epoch = 0;
};

struct StateTransferAck {
  std::uint64_t transfer_id = 0;
  std::uint64_t epoch = 0;
};

/// Runtime QoS renegotiation: the primary loosened an admitted object's
/// temporal constraint (δ_iB, and with it the window and the transmission
/// period r_i) because overload would otherwise violate the original
/// window silently.  Sent to every backup (and surfaced to the client)
/// *before* the first out-of-original-window distance — the no-silent-
/// violation oracle holds the service to exactly that.  `qos_seq` is a
/// per-object monotone renegotiation counter: downgrades and restores can
/// reorder on a lossy link, so receivers apply only seq-newer changes.
struct ConstraintDowngrade {
  ObjectId object = kInvalidObject;
  Duration delta_primary{};   ///< unchanged δ_iP, echoed for the client
  Duration delta_backup{};    ///< loosened δ_iB
  Duration update_period{};   ///< new transmission period r_i
  std::uint64_t qos_seq = 0;
  std::uint64_t epoch = 0;
};

/// The overload cleared (with hysteresis): the original constraint is
/// re-admitted and replicas tighten back.
struct ConstraintRestore {
  ObjectId object = kInvalidObject;
  Duration delta_backup{};    ///< original δ_iB, restored
  Duration update_period{};   ///< restored transmission period r_i
  std::uint64_t qos_seq = 0;
  std::uint64_t epoch = 0;
};

/// Sharded scale-out: one shard's stable-timestamp frontier — the minimum
/// origin timestamp over the shard's objects as known at its primary.  A
/// cross-shard constraint δ_ij between shards A and B holds at time t when
/// t − F_A ≤ δ_ij and t − F_B ≤ δ_ij, so each shard primary only needs the
/// peer shards' frontiers, not their object tables.  Receivers merge
/// monotonically (a frontier never moves backwards), which makes stale or
/// reordered frames harmless — and is why this is the one message type
/// exempt from epoch fencing: sender and receiver live in DIFFERENT
/// primary-backup groups whose epochs are unrelated incarnation counters.
struct Frontier {
  std::uint32_t shard = 0;
  TimePoint stable_ts{};
  std::uint64_t epoch = 0;  ///< sender's group epoch; informational only
};

/// One (object, version, qos_seq) triple of a rejoining replica's
/// durable version vector.  `qos_seq` is the newest QoS renegotiation
/// sequence the rejoiner has applied for the object (0 if none — QoS
/// state is deliberately not durable, so a restarted replica always
/// reports 0): an object whose spec lags the primary's renegotiated one
/// is dirty even when its version is current.
struct ResyncEntry {
  ObjectId object = kInvalidObject;
  std::uint64_t version = 0;
  std::uint64_t qos_seq = 0;
};

/// Durable crash recovery: a restarted replica announces the version
/// vector it recovered from its WAL and asks the primary for everything
/// newer.  Sent with the epoch-0 bootstrap wildcard — the rejoiner's
/// recovered epoch may predate a failover that happened while it was
/// down, and a fenced resync request would strand it forever.
struct ResyncRequest {
  std::vector<ResyncEntry> have;
  std::uint64_t epoch = 0;
};

/// The primary's answer to a ResyncRequest: only the objects whose
/// version is ahead of the rejoiner's durable vector (the dirty set),
/// plus the (small) inter-object constraint table so a later promotion
/// of the rejoined replica rebuilds admission correctly.  Falls back to a
/// full kStateTransfer when the delta would not actually save anything.
/// Shares the transfer-id sequence (and the kStateTransferAck / retry
/// machinery) with kStateTransfer, so the per-sender reorder guard
/// totally orders deltas and full transfers.
struct StateDelta {
  std::uint64_t transfer_id = 0;
  std::vector<StateEntry> entries;
  std::vector<InterObjectConstraint> constraints;
  std::uint64_t epoch = 0;
};

/// Active baseline: a write stamped with a global sequence number; every
/// replica applies writes in sequence order.
struct ActivePrepare {
  std::uint64_t sequence = 0;
  ObjectId object = kInvalidObject;
  TimePoint timestamp{};
  Bytes value;
};

struct ActiveAck {
  std::uint64_t sequence = 0;
};

// Encoding: 1-byte type tag followed by the body.  Every encoder reserves
// the exact frame size up front (see encoded_size overloads), so encoding
// a frame costs exactly one allocation.
[[nodiscard]] Bytes encode(const Update& m);
[[nodiscard]] Bytes encode(const UpdateBatch& m);
[[nodiscard]] Bytes encode(const UpdateAck& m);
[[nodiscard]] Bytes encode(const RetransmitRequest& m);
[[nodiscard]] Bytes encode(const Ping& m);
[[nodiscard]] Bytes encode(const PingAck& m);
[[nodiscard]] Bytes encode(const StateTransfer& m);
[[nodiscard]] Bytes encode(const StateTransferAck& m);
[[nodiscard]] Bytes encode(const ConstraintDowngrade& m);
[[nodiscard]] Bytes encode(const ConstraintRestore& m);
[[nodiscard]] Bytes encode(const Frontier& m);
[[nodiscard]] Bytes encode(const ResyncRequest& m);
[[nodiscard]] Bytes encode(const StateDelta& m);
[[nodiscard]] Bytes encode(const ActivePrepare& m);
[[nodiscard]] Bytes encode(const ActiveAck& m);

/// Decoded message (one alternative set).  decode() returns nullopt on a
/// malformed buffer — the caller drops it, as UDP consumers must.
/// Exact on-the-wire size of each message — the ByteWriter reserve used by
/// the corresponding encode(), asserted by the allocation-counting bench.
[[nodiscard]] std::size_t encoded_size(const Update& m);
[[nodiscard]] std::size_t encoded_size(const UpdateBatch& m);
[[nodiscard]] std::size_t encoded_size(const StateTransfer& m);
[[nodiscard]] std::size_t encoded_size(const StateDelta& m);
[[nodiscard]] std::size_t encoded_size(const ActivePrepare& m);

struct AnyMessage {
  MsgType type{};
  std::optional<Update> update;
  std::optional<UpdateBatch> update_batch;
  std::optional<UpdateAck> update_ack;
  std::optional<RetransmitRequest> retransmit;
  std::optional<Ping> ping;
  std::optional<PingAck> ping_ack;
  std::optional<StateTransfer> state_transfer;
  std::optional<StateTransferAck> state_transfer_ack;
  std::optional<ConstraintDowngrade> constraint_downgrade;
  std::optional<ConstraintRestore> constraint_restore;
  std::optional<Frontier> frontier;
  std::optional<ResyncRequest> resync_request;
  std::optional<StateDelta> state_delta;
  std::optional<ActivePrepare> active_prepare;
  std::optional<ActiveAck> active_ack;
};

[[nodiscard]] std::optional<AnyMessage> decode(std::span<const std::uint8_t> data);

/// The replication epoch stamped on a decoded message, or 0 for message
/// types that do not carry one (the active-replication baseline).
[[nodiscard]] std::uint64_t epoch_of(const AnyMessage& m);

}  // namespace rtpb::core::wire
