#include "core/service.hpp"

#include "util/log.hpp"

namespace rtpb::core {

RtpbService::RtpbService(ServiceParams params)
    : params_(std::move(params)), sim_(params_.seed), network_(sim_) {
  RTPB_EXPECTS(params_.backup_count >= 1);
  primary_ = std::make_unique<ReplicaServer>(sim_, network_, names_, params_.config, metrics_,
                                             Role::kPrimary, params_.service_name);
  for (std::size_t i = 0; i < params_.backup_count; ++i) {
    auto backup = std::make_unique<ReplicaServer>(sim_, network_, names_, params_.config,
                                                  metrics_, Role::kBackup, params_.service_name);
    network_.connect(primary_->node(), backup->node(), params_.link);
    primary_->add_peer(backup->endpoint());
    backup->add_peer(primary_->endpoint());
    backup->set_successor(i == 0);
    backups_.push_back(std::move(backup));
  }
  // Backups must be able to reach each other after a failover.
  for (std::size_t i = 0; i < backups_.size(); ++i) {
    for (std::size_t j = i + 1; j < backups_.size(); ++j) {
      network_.connect(backups_[i]->node(), backups_[j]->node(), params_.link);
    }
  }

  client_ = std::make_unique<ClientApp>(sim_, *primary_, sim_.rng().fork(), /*active=*/true);
  backup_client_ =
      std::make_unique<ClientApp>(sim_, *backups_.front(), sim_.rng().fork(), /*active=*/false);

  if (params_.durable) {
    // One WAL + checkpoint device pair per replica, attached before
    // start() so even the boot metadata is persisted.
    storage_.push_back(std::make_unique<ReplicaStorage>(params_.checkpoint_every));
    primary_->attach_storage(&storage_.back()->durable);
    for (auto& b : backups_) {
      storage_.push_back(std::make_unique<ReplicaStorage>(params_.checkpoint_every));
      b->attach_storage(&storage_.back()->durable);
    }
  }

  wire_backup_hooks();
}

void RtpbService::wire_backup_hooks() {
  // Primary: if it is ever deposed (a higher epoch was promoted over it —
  // split-brain resolution), stop its client application so the orphan
  // generates no further writes.
  ReplicaServer::Hooks primary_hooks;
  primary_hooks.on_deposed = [this] { client_->deactivate(); };
  primary_->set_hooks(std::move(primary_hooks));

  // Successor: on promotion, activate its local client twin and recruit
  // every other surviving backup.
  ReplicaServer::Hooks successor_hooks;
  successor_hooks.on_promoted = [this] {
    backup_client_->activate();
    for (auto& b : backups_) {
      if (b.get() == backups_.front().get()) continue;
      if (b->crashed()) continue;
      backups_.front()->recruit_backup(b->endpoint());
    }
  };
  successor_hooks.on_deposed = [this] { backup_client_->deactivate(); };
  backups_.front()->set_hooks(std::move(successor_hooks));

  // Non-successors: when they lose the primary, follow whoever the name
  // service points at once it changes.
  const net::Endpoint original_primary = primary_->endpoint();
  for (std::size_t i = 1; i < backups_.size(); ++i) {
    ReplicaServer* b = backups_[i].get();
    ReplicaServer::Hooks hooks;
    hooks.on_primary_lost = [this, b, original_primary] {
      repoint_backup(*b, original_primary);
    };
    b->set_hooks(std::move(hooks));
  }
}

void RtpbService::repoint_backup(ReplicaServer& backup, net::Endpoint dead_primary) {
  if (backup.crashed()) return;
  const auto addr = names_.lookup(params_.service_name);
  if (addr && *addr != dead_primary && addr->node != backup.node()) {
    backup.follow_new_primary(*addr);
    return;
  }
  // Successor hasn't rewritten the name file yet: retry shortly.
  sim_.schedule_after(params_.config.ping_period,
                      [this, &backup, dead_primary] { repoint_backup(backup, dead_primary); });
}

void RtpbService::start() {
  RTPB_EXPECTS(!started_);
  started_ = true;
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().gauge("core.service.backups").set(static_cast<double>(backups_.size()));
    hub.record(telemetry::kNoSpan, 0, telemetry::EventKind::kInstant, "service", "start",
               params_.service_name + " primary=node" + std::to_string(primary_->node()));
  }
  primary_->start();
  for (auto& b : backups_) b->start();
}

void RtpbService::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

void RtpbService::warm_up(Duration d) {
  run_for(d);
  metrics_.reset_statistics();
}

void RtpbService::finish() {
  metrics_.finish(sim_.now());
  // End-of-run export of the temporal-slack SLO accounting (core.slo.*):
  // the monitor is fed inline from the replication path; percentiles and
  // burn rates are rendered into the registry exactly once, here.
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled() && hub.slo().enabled()) hub.slo().export_to(hub.registry());
}

void RtpbService::crash_primary() { primary_->crash(); }

void RtpbService::crash_backup() { backups_.front()->crash(); }

RtpbService::ReplicaStorage* RtpbService::storage_for(std::size_t replica_index) {
  return replica_index < storage_.size() ? storage_[replica_index].get() : nullptr;
}

store::SimStorageDevice* RtpbService::wal_device(std::size_t replica_index) {
  ReplicaStorage* s = storage_for(replica_index);
  return s ? &s->wal : nullptr;
}

store::SimStorageDevice* RtpbService::checkpoint_device(std::size_t replica_index) {
  ReplicaStorage* s = storage_for(replica_index);
  return s ? &s->checkpoint : nullptr;
}

void RtpbService::restart_primary() { restart_replica(*primary_); }

void RtpbService::restart_backup(std::size_t index) {
  RTPB_EXPECTS(index < backups_.size());
  restart_replica(*backups_[index]);
}

void RtpbService::restart_replica(ReplicaServer& replica) {
  RTPB_EXPECTS(params_.durable);
  // The original primary's client twin must not keep generating writes
  // into a replica that rejoins as a backup.  (The successor's twin is
  // hook-managed: on_deposed already deactivates it.)
  if (&replica == primary_.get()) client_->deactivate();
  replica.restart();
  rejoin_when_primary_known(replica);
}

void RtpbService::rejoin_when_primary_known(ReplicaServer& replica) {
  if (replica.crashed()) return;  // crashed again while waiting
  const auto addr = names_.lookup(params_.service_name);
  if (addr && addr->node != replica.node()) {
    // Only follow a LIVE primary: the name file may still point at the
    // very replica that just died (failover not yet settled), or at a
    // node that has since crashed too.
    bool addr_live = false;
    for_each_replica([&](const ReplicaServer& r) {
      if (r.node() == addr->node && !r.crashed() && r.role() == Role::kPrimary) {
        addr_live = true;
      }
    });
    if (addr_live) {
      replica.follow_new_primary(*addr);
      replica.request_resync();
      // A restarted replica comes back as a non-successor orphan.  Once
      // the front backup is following a live primary again, re-designate
      // it: otherwise a later primary crash would leave the cluster
      // primary-less forever.
      if (&replica == backups_.front().get()) replica.set_successor(true);
      return;
    }
  }
  sim_.schedule_after(params_.config.ping_period,
                      [this, &replica] { rejoin_when_primary_known(replica); });
}

ReplicaServer& RtpbService::acting_primary() {
  if (!primary_->crashed() && primary_->role() == Role::kPrimary) return *primary_;
  for (auto& b : backups_) {
    if (!b->crashed() && b->role() == Role::kPrimary) return *b;
  }
  if (standby_ && standby_->role() == Role::kPrimary) return *standby_;
  return *primary_;
}

void RtpbService::for_each_replica(const std::function<void(const ReplicaServer&)>& fn) const {
  fn(*primary_);
  for (const auto& b : backups_) fn(*b);
  if (standby_) fn(*standby_);
}

std::size_t RtpbService::primaries_alive() const {
  std::size_t n = 0;
  for_each_replica([&n](const ReplicaServer& r) {
    if (!r.crashed() && r.role() == Role::kPrimary) ++n;
  });
  return n;
}

ReplicaServer& RtpbService::add_standby() {
  RTPB_EXPECTS(standby_ == nullptr);
  standby_ = std::make_unique<ReplicaServer>(sim_, network_, names_, params_.config, metrics_,
                                             Role::kBackup, params_.service_name);
  if (params_.durable) {
    storage_.push_back(std::make_unique<ReplicaStorage>(params_.checkpoint_every));
    standby_->attach_storage(&storage_.back()->durable);
  }
  ReplicaServer& new_primary = acting_primary();
  // Connect the standby to every replica, not just the acting primary: in
  // a multi-backup chain a later failover may have a different survivor
  // recruit it.
  network_.connect(new_primary.node(), standby_->node(), params_.link);
  for_each_replica([this](const ReplicaServer& r) {
    if (r.node() == standby_->node()) return;
    if (!network_.link_params(r.node(), standby_->node())) {
      network_.connect(r.node(), standby_->node(), params_.link);
    }
  });
  standby_->add_peer(new_primary.endpoint());
  standby_->start();
  if (!new_primary.crashed() && new_primary.role() == Role::kPrimary) {
    new_primary.recruit_backup(standby_->endpoint());
  } else {
    // No live primary to recruit from (failover never settled): the
    // standby comes up orphaned and stays cold.  The service is now
    // primary-less, which monitoring is expected to flag.
    RTPB_WARN("rtpb", "standby@node%u recruited with no live primary", standby_->node());
  }
  return *standby_;
}

Duration RtpbService::link_delay_bound() const {
  auto p = network_.link_params(primary_->node(), backups_.front()->node());
  // Sized for the primary's current frame budget (grows with the largest
  // registered payload), matching what admission control uses.
  return p ? p->delay_bound(primary_->frame_budget()) : Duration::zero();
}

}  // namespace rtpb::core
