// The client application of the paper (§4.1): it "continuously senses the
// environment and periodically sends updates to the primary" over a
// co-located IPC interface, modelled as periodic jobs on the primary's
// CPU whose completion invokes the server's write path.
//
// Two identical instances exist — one at the primary (active) and one at
// the backup (standby).  On failover the promoted server activates its
// local instance and feeds it the replicated state by up-call (§4.4).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/server.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace rtpb::core {

class ClientApp {
 public:
  /// `active`: primary-side clients start sensing as soon as objects are
  /// registered; the backup twin stays idle until activate().
  ClientApp(sim::Simulator& sim, ReplicaServer& home, Rng rng, bool active);

  ClientApp(const ClientApp&) = delete;
  ClientApp& operator=(const ClientApp&) = delete;

  /// Register an object with the home server (admission control applies)
  /// and, if admitted and this client is active, start its sensing task.
  AdmissionResult add_object(const ObjectSpec& spec);
  AdmissionStatus add_constraint(const InterObjectConstraint& c);

  /// Start sensing tasks for every object in the home server's store.
  /// Used by the backup twin after promotion — the "up call" of §4.4.
  void activate();
  void deactivate();
  [[nodiscard]] bool active() const { return active_; }

  [[nodiscard]] std::size_t sensing_tasks() const { return tasks_.size(); }
  [[nodiscard]] std::uint64_t writes_issued() const { return writes_issued_; }

 private:
  void start_sensing(const ObjectSpec& spec);
  [[nodiscard]] Bytes sense_value(const ObjectSpec& spec);

  sim::Simulator& sim_;
  ReplicaServer& home_;
  Rng rng_;
  bool active_;
  std::map<ObjectId, sched::TaskId> tasks_;
  std::vector<ObjectSpec> specs_;
  std::uint64_t writes_issued_ = 0;
};

}  // namespace rtpb::core
