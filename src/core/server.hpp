// The RTPB replica server — the paper's primary and backup servers in one
// role-switching class (a backup *becomes* the primary at failover, §4.4).
//
// As PRIMARY it:
//   - accepts client registrations through admission control (§4.2),
//   - hosts the client application's periodic update tasks on its CPU,
//   - runs one periodic update-transmission task per admitted object
//     (period r_i from admission; normal or compressed scheduling, §4.3),
//   - replicates registrations to the backup via acknowledged state
//     transfer, answers retransmission requests, optionally tracks
//     per-update acks (ablation mode),
//   - exchanges heartbeats with the backup.
//
// As BACKUP it:
//   - applies UPDATE messages to its object store,
//   - runs a per-object watchdog that requests retransmission when the
//     update stream stalls (§4.3: "retransmission is triggered by a
//     request from the backup"),
//   - exchanges heartbeats with the primary and, when the primary is
//     declared dead, promotes itself: rewrites the name-service entry,
//     activates the local (backup) client application, and can recruit a
//     fresh backup via full state transfer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/degradation.hpp"
#include "core/heartbeat.hpp"
#include "core/metrics.hpp"
#include "core/name_service.hpp"
#include "core/object_store.hpp"
#include "core/types.hpp"
#include "core/wire.hpp"
#include "net/network.hpp"
#include "sched/cpu.hpp"
#include "sim/simulator.hpp"
#include "store/durable_store.hpp"
#include "xkernel/fraglite.hpp"
#include "xkernel/graph.hpp"

namespace rtpb::core {

/// UDP port the RTPB anchor protocol binds on every replica.
inline constexpr net::Port kRtpbPort = 5000;

enum class Role { kPrimary, kBackup };
[[nodiscard]] inline const char* role_name(Role r) {
  return r == Role::kPrimary ? "primary" : "backup";
}

class ReplicaServer {
 public:
  struct Hooks {
    /// Fired when this (backup) server promotes itself to primary.
    std::function<void()> on_promoted;
    /// Fired on the new primary when a recruited backup acknowledged the
    /// full state transfer and replication is re-established.
    std::function<void()> on_backup_recruited;
    /// Fired on a backup that detected the primary's death but is NOT the
    /// designated successor (multi-backup deployments): it should re-peer
    /// with the new primary once the name service is rewritten.
    std::function<void()> on_primary_lost;
    /// Fired on a primary that learned of a higher replication epoch and
    /// stepped down (split-brain resolution): the hosting service should
    /// deactivate this replica's client application.
    std::function<void()> on_deposed;
    /// Fired on the primary when it renegotiates an object's QoS at
    /// runtime (downgrade or restore) — the paper's client notification;
    /// the spec passed is the now-admitted one.
    std::function<void(ObjectId, const ObjectSpec&)> on_qos_changed;
  };

  ReplicaServer(sim::Simulator& sim, net::Network& network, NameService& names,
                ServiceConfig config, Metrics& metrics, Role role, std::string service_name);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  [[nodiscard]] net::NodeId node() const { return stack_.node(); }
  [[nodiscard]] net::Endpoint endpoint() const { return {node(), kRtpbPort}; }
  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] sched::Cpu& cpu() { return cpu_; }
  [[nodiscard]] const ObjectStore& store() const { return store_; }
  [[nodiscard]] const AdmissionController& admission() const { return *admission_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Fault injection: change the §5 injected update-loss probability at
  /// runtime (applies to subsequent update transmissions).
  void set_update_loss_probability(double p) {
    RTPB_EXPECTS(p >= 0.0 && p <= 1.0);
    config_.update_loss_probability = p;
  }
  /// Shard-targeted fault injection: override the loss probability for ONE
  /// object's update stream (takes precedence over the global knob).  The
  /// chaos harness uses this to storm a single shard's objects while the
  /// rest of the workload replicates cleanly.
  void set_object_loss_probability(ObjectId id, double p) {
    RTPB_EXPECTS(p >= 0.0 && p <= 1.0);
    object_loss_override_[id] = p;
  }
  void clear_object_loss_probability(ObjectId id) { object_loss_override_.erase(id); }

  // ---- cross-shard frontier exchange (sharded scale-out) ----
  /// Register a peer SHARD primary (a different primary-backup group) to
  /// receive this group's stable-timestamp frontiers.  Distinct from
  /// add_peer(): frontier peers get no updates, heartbeats or transfers.
  void add_frontier_peer(net::Endpoint peer);
  /// Broadcast `shard`'s stable-timestamp frontier to every frontier peer.
  /// Explicitly driven (no internal timer) so single-group deployments
  /// that never call it keep byte-identical traffic.
  void announce_frontier(std::uint32_t shard, TimePoint stable_ts);
  /// Parallel scale-out: apply a cross-group frontier record delivered
  /// out-of-band by the parallel driver's window-barrier exchange (no
  /// simulated frame — peer groups live in DIFFERENT simulators, so the
  /// record cannot travel through this group's network).  Identical
  /// monotone merge to a received kFrontier frame, and counted in
  /// frontier_frames_received().  Dropped while crashed, like any frame.
  void ingest_frontier(const wire::Frontier& f);
  /// Latest frontier received for `shard` (monotone merge of kFrontier
  /// frames); TimePoint::zero() if none seen.
  [[nodiscard]] TimePoint peer_frontier(std::uint32_t shard) const;
  [[nodiscard]] const std::map<std::uint32_t, TimePoint>& peer_frontiers() const {
    return peer_frontiers_;
  }
  [[nodiscard]] std::uint64_t frontier_frames_sent() const { return frontier_frames_sent_; }
  [[nodiscard]] std::uint64_t frontier_frames_received() const {
    return frontier_frames_received_;
  }

  /// Primary: the backup(s) updates replicate to.  The first entry is the
  /// heartbeat partner / failover successor.
  void add_peer(net::Endpoint peer);
  [[nodiscard]] const std::vector<net::Endpoint>& peers() const { return peers_; }

  /// Start serving: publish the name (primary), start CPU and heartbeats.
  void start();
  /// Crash the server: halts the CPU, closes the port, marks the node
  /// down.  Used for failure injection.
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }

  // ---- durability & crash recovery ----
  /// Attach the write-ahead-logged backing store.  Must happen before
  /// start(); a null store (the default) keeps the replica purely
  /// in-memory with byte-identical behaviour.
  void attach_storage(store::DurableStore* storage) {
    RTPB_EXPECTS(!started_);
    storage_ = storage;
  }
  [[nodiscard]] store::DurableStore* durable() { return storage_; }
  /// Crashed replica only: power-cycle the storage devices, replay the
  /// last checkpoint plus the WAL tail into the object store, re-derive
  /// epoch and transfer-id high water from the persisted metadata, and
  /// come back up as an orphaned backup (the service layer re-points it
  /// at the acting primary and drives the resync).  Requires attached
  /// storage.
  void restart();
  /// Rejoined backup: announce the recovered version vector to the first
  /// peer and ask for everything newer (kResyncRequest → kStateDelta or
  /// full kStateTransfer).  Retries on a timer until a transfer arrives.
  void request_resync();
  /// Client-acked updates the recovered state was found to be missing
  /// (durability oracle: must stay 0 under log-before-apply).
  [[nodiscard]] std::uint64_t recovery_lost_updates() const { return recovery_lost_updates_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] std::uint64_t resync_requests_sent() const { return resync_requests_sent_; }
  [[nodiscard]] std::uint64_t resync_deltas_sent() const { return resync_deltas_sent_; }
  [[nodiscard]] std::uint64_t resync_fulls_sent() const { return resync_fulls_sent_; }
  /// Object entries shipped inside kStateDelta frames (O(dirty set), the
  /// incremental-rejoin win the recovery bench asserts).
  [[nodiscard]] std::uint64_t delta_entries_sent() const { return delta_entries_sent_; }

  // ---- client-facing interface (Mach IPC in the paper; a co-located
  // ---- call here).  Valid only while role() == kPrimary.
  AdmissionResult register_object(const ObjectSpec& spec);
  AdmissionStatus add_constraint(const InterObjectConstraint& c);
  /// Record a client write that completed at `info.finish` (the client
  /// app's CPU job callback funnels here).
  void local_write(ObjectId id, Bytes value, const sched::JobInfo& info);
  /// Read an object (either role; failover reads come through here).
  [[nodiscard]] std::optional<ObjectState> read(ObjectId id) const;

  // ---- failover ----
  /// Backup only: promote to primary immediately (normally triggered by
  /// the failure detector; exposed for drills).
  void promote();
  /// New primary: establish a (further) backup by full state transfer.
  /// Existing peers are kept; the new endpoint is appended if absent.
  void recruit_backup(net::Endpoint new_backup);
  /// Backup: whether this replica promotes itself when the primary dies
  /// (the designated successor) or defers via Hooks::on_primary_lost.
  void set_successor(bool is_successor) { successor_ = is_successor; }
  [[nodiscard]] bool is_successor() const { return successor_; }
  /// Backup (non-successor, after failover): forget the dead primary and
  /// follow `new_primary` instead; restarts the heartbeat.
  void follow_new_primary(net::Endpoint new_primary);

  // ---- runtime QoS renegotiation (graceful degradation) ----
  /// Primary: loosen `id`'s temporal constraint (δ_iB grows by
  /// degrade_window_factor windows, passed through admission's suggestion
  /// machinery) and notify backups + client with kConstraintDowngrade.
  /// Normally driven by the DegradationController's overload detection;
  /// exposed for drills and tests.  Returns false if the object is
  /// unknown, already downgraded, or no feasible relaxation exists.
  bool downgrade_object(ObjectId id);
  /// Primary: re-admit `id`'s original (pre-downgrade) constraint and
  /// notify with kConstraintRestore.  Callers gate on hysteresis; this
  /// only checks feasibility.  Returns false if not downgraded.
  bool restore_object(ObjectId id);
  /// Whether `id` currently runs under a downgraded constraint issued by
  /// THIS replica as primary.
  [[nodiscard]] bool qos_downgrade_active(ObjectId id) const {
    return downgrades_.contains(id);
  }
  /// When the last QoS notice (downgrade or restore) for `id` was sent
  /// (primary) or received (backup); TimePoint::zero() if never.
  [[nodiscard]] TimePoint qos_last_notice_at(ObjectId id) const;
  [[nodiscard]] std::uint64_t qos_downgrades_sent() const { return downgrades_sent_; }
  [[nodiscard]] std::uint64_t qos_restores_sent() const { return restores_sent_; }
  [[nodiscard]] std::uint64_t qos_downgrades_received() const { return downgrades_received_; }
  /// Updates dropped by slack-aware shedding while overloaded.
  [[nodiscard]] std::uint64_t updates_shed() const { return updates_shed_; }
  /// Updates currently staged for the open batch window (send-queue depth
  /// as seen by overload detection; health-feed instrumentation).
  [[nodiscard]] std::size_t staged_update_count() const { return staged_updates_.size(); }
  /// Transfers abandoned after transfer_retry_limit attempts (the silent
  /// peer was reported suspected-down).
  [[nodiscard]] std::uint64_t transfer_give_ups() const { return transfer_give_ups_; }
  /// The overload detector (null until start()).
  [[nodiscard]] const DegradationController* degradation() const { return degrade_.get(); }

  // ---- epoch fencing ----
  /// Current replication epoch (incarnation).  The first primary starts at
  /// 1; each promote() mints a higher epoch; backups track the highest
  /// epoch seen on accepted traffic.  0 = not yet learned (fresh standby).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Messages dropped because they carried a lower (stale) epoch.
  [[nodiscard]] std::uint64_t epoch_rejections() const { return epoch_rejections_; }
  /// Updates/transfers dropped because this replica is not a backup.
  [[nodiscard]] std::uint64_t role_rejections() const { return role_rejections_; }
  /// Updates this replica APPLIED although they were stamped with a lower
  /// epoch than its own — the split-brain hazard.  Always 0 with epoch
  /// fencing on; the chaos no-cross-epoch-apply oracle asserts it.
  [[nodiscard]] std::uint64_t cross_epoch_applies() const { return cross_epoch_applies_; }
  /// In-flight state transfers this server is driving (input to the
  /// explorer's canonical state hash).
  [[nodiscard]] std::size_t pending_transfer_count() const { return pending_transfers_.size(); }
  /// Times this replica, as primary, stepped down after seeing a higher
  /// epoch (it had been deposed without noticing).
  [[nodiscard]] std::uint64_t step_downs() const { return step_downs_; }

  // ---- introspection / stats ----
  [[nodiscard]] std::uint64_t updates_sent() const { return updates_sent_; }
  /// Wire frames carrying update payloads (kUpdate + kUpdateBatch).  With
  /// batching on this lags updates_sent(): many updates ride one frame.
  [[nodiscard]] std::uint64_t update_frames_sent() const { return update_frames_sent_; }
  /// Updates that went out inside a kUpdateBatch frame.
  [[nodiscard]] std::uint64_t updates_batched() const { return updates_batched_; }
  [[nodiscard]] std::uint64_t updates_loss_injected() const { return updates_loss_injected_; }
  [[nodiscard]] std::uint64_t updates_applied() const { return updates_applied_; }
  [[nodiscard]] std::uint64_t stale_updates() const { return stale_updates_; }
  [[nodiscard]] std::uint64_t retransmit_requests_sent() const { return nacks_sent_; }
  [[nodiscard]] std::uint64_t retransmissions_served() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  /// Per-peer failure detector, or nullptr if none exists for `peer`.
  [[nodiscard]] const FailureDetector* detector(net::NodeId peer) const;
  /// Newest version of `id` acknowledged by `peer` (ack mode; 0 if none).
  [[nodiscard]] std::uint64_t peer_acked_version(net::NodeId peer, ObjectId id) const;
  /// Highest state-transfer id applied from `sender` (0 if none) — the
  /// reorder guard for constraint tables and watchdog periods.
  [[nodiscard]] std::uint64_t highest_transfer_applied(net::NodeId sender) const;
  /// Frame budget ℓ is derived from: max(1 KiB, largest registered payload).
  [[nodiscard]] std::size_t frame_budget() const { return frame_budget_; }
  /// The FRAGLITE layer, or nullptr when fragmentation is disabled.
  [[nodiscard]] const xkernel::FragLite* frag() const { return frag_.get(); }
  /// The x-kernel stack (oracle/test observation: transport checksum
  /// failures, frame counters).
  [[nodiscard]] const xkernel::HostStack& stack() const { return stack_; }
  [[nodiscard]] TimePoint promoted_at() const { return promoted_at_; }

 private:
  struct UpdateTaskState {
    sched::TaskId task = sched::kInvalidTask;
    Duration period{};
  };
  /// Primary-side per-object ack-timeout handle (ack_every_update mode).
  /// Which versions each peer acknowledged lives in PeerState — a shared
  /// slot here let the fastest backup's ack cancel retransmission for
  /// peers that never received the update.
  struct AckState {
    sim::EventHandle timeout;
  };
  /// Backup-side per-object watchdog.
  struct WatchdogState {
    Duration expected_period{};
    sim::EventHandle timer;
  };
  /// Per-peer replication state (the tentpole 1→N generalisation): each
  /// backup gets its own acked-version table and failure detector.
  struct PeerState {
    net::Endpoint endpoint{};
    std::map<ObjectId, std::uint64_t> acked;
    std::unique_ptr<FailureDetector> detector;
  };

  void handle_message(xkernel::Message& msg, const xkernel::MsgAttrs& attrs);
  void handle_update(const wire::Update& u, net::Endpoint from);
  /// Applies the coalesced entries strictly in order.  Non-const: entry
  /// values are moved out rather than copied.
  void handle_update_batch(wire::UpdateBatch& b, net::Endpoint from);
  void handle_update_ack(const wire::UpdateAck& a, net::Endpoint from);
  void handle_retransmit_request(const wire::RetransmitRequest& r, net::Endpoint from);
  void handle_ping(const wire::Ping& p, net::Endpoint from);
  void handle_ping_ack(const wire::PingAck& p, net::Endpoint from);
  void handle_state_transfer(const wire::StateTransfer& st, net::Endpoint from);
  void handle_state_transfer_ack(const wire::StateTransferAck& ack, net::Endpoint from);
  void handle_resync_request(const wire::ResyncRequest& rq, net::Endpoint from);
  /// Non-const: entry values are moved into the store rather than copied.
  void handle_state_delta(wire::StateDelta& sd, net::Endpoint from);
  void handle_constraint_downgrade(const wire::ConstraintDowngrade& d, net::Endpoint from);
  void handle_constraint_restore(const wire::ConstraintRestore& rs, net::Endpoint from);
  void handle_frontier(const wire::Frontier& f, net::Endpoint from);

  void send_to(net::Endpoint to, Bytes payload);
  /// Fan-out building block: the message is taken by value, so sending one
  /// encoded frame to N peers passes N copies that all share the same body
  /// buffer — only the per-peer protocol headers are materialised.
  void send_to(net::Endpoint to, xkernel::Message msg);
  /// Encode the staged object updates into one kUpdateBatch frame and fan
  /// it out to every peer (encode-once; bodies shared across peers).
  void flush_staged_updates();
  /// `job`, when given, is the transmission job that triggered this send;
  /// its release/start times are attached to the update's telemetry span.
  /// `targets`, when given, restricts the send to those peers (targeted
  /// retransmission to lagging backups); default is every peer.
  void send_update(ObjectId id, bool retransmission, const sched::JobInfo* job = nullptr,
                   const std::vector<net::Endpoint>* targets = nullptr);
  /// Reconcile CPU update tasks with admission's current period table
  /// (periods move under compressed scheduling and constraint tightening).
  void sync_update_tasks();
  /// Replicate a new registration to all peers (retried until acked).
  void replicate_registration(ObjectId id);
  void retry_pending_registrations();
  void arm_watchdog(ObjectId id);
  /// The interval at which the backup should expect updates for `id`: the
  /// admitted transmission period, or the client period in coupled mode.
  [[nodiscard]] Duration effective_update_interval(ObjectId id) const;
  void arm_ack_timeout(ObjectId id, std::uint64_t version);
  void start_heartbeat();
  /// Create + start the failure detector for `peer` unless already running.
  void ensure_detector(net::Endpoint peer);
  /// The ack timeout detectors start with: config_.ping_ack_timeout if
  /// non-zero, else derived from the link delay bound ℓ (clamp(4ℓ, 5 ms,
  /// ping_period)); ping_period / 2 with no link model.
  [[nodiscard]] Duration derived_ack_timeout() const;
  /// A matched ping ack measured `rtt`: feed the overload detector and,
  /// in adaptive mode, retune every detector's ack timeout to the RTO.
  void on_rtt_sample(Duration rtt);
  /// Delay before the next pending-transfer retry: exponential backoff
  /// with seeded jitter when degradation is on, the fixed ping_period × 2
  /// otherwise.
  [[nodiscard]] Duration transfer_retry_delay();
  void arm_transfer_retry();
  /// Slack-aware shedding: under overload, reorder the staged updates by
  /// time-to-window-violation and drop the ones a fresh client write will
  /// supersede before their slack expires.  Runs inside the batch flush.
  void shed_staged_updates();
  /// Periodic (10 ms) primary-side QoS evaluation: downgrade objects whose
  /// window is more than half consumed while overloaded (or nearly fully
  /// consumed regardless), restore after calm hysteresis.
  void qos_tick();
  void arm_qos_tick();
  /// A per-peer detector declared `peer` dead.
  void on_peer_dead(net::NodeId peer);
  /// Drop `peer` from the replication set (detector, acks, transfers).
  void remove_peer(net::NodeId peer);
  /// Stop every per-peer detector and park it in retired_ (safe even when
  /// called from inside a detector callback), then forget all peers.
  void clear_peers();
  /// This primary learned of a higher epoch: demote to an orphaned backup.
  void step_down(std::uint64_t new_epoch);
  /// Grow the admission frame budget to cover `payload_bytes`.
  void grow_frame_budget(std::size_t payload_bytes);

  // ---- durability helpers (all no-ops with no attached storage) ----
  /// WAL a remote update BEFORE applying it (log-before-apply): returns
  /// false — and the caller must bail without applying or acking — when
  /// the append fail-stopped this replica.
  bool durable_log_update(ObjectId id, std::uint64_t version, TimePoint origin_ts,
                          const Bytes& value);
  /// WAL a registration before inserting it; fail-stop on device failure.
  bool durable_log_insert(const ObjectSpec& spec);
  /// Persist (epoch, next_transfer_id) — called whenever either moves.
  void durable_log_meta();
  /// Mint the next transfer id and persist the new high water, so a
  /// restarted primary never reuses an id its peers already saw.
  std::uint64_t mint_transfer_id();
  /// Checkpoint when the WAL grew past the configured record budget.
  void maybe_checkpoint();
  /// A storage append failed: crash this replica (fail-stop discipline).
  void fail_stop(const char* what);
  /// One kStateTransfer/kStateDelta entry for `id` from the live store.
  [[nodiscard]] wire::StateEntry state_entry_for(ObjectId id) const;

  sim::Simulator& sim_;
  net::Network& network_;
  NameService& names_;
  ServiceConfig config_;
  Metrics& metrics_;
  Role role_;
  std::string service_name_;

  xkernel::HostStack stack_;
  std::unique_ptr<xkernel::FragLite> frag_;  ///< null when fragmentation is off
  sched::Cpu cpu_;
  ObjectStore store_;
  std::unique_ptr<AdmissionController> admission_;
  Hooks hooks_;

  std::vector<net::Endpoint> peers_;  ///< replication order; [0] = successor
  std::map<net::NodeId, PeerState> peer_state_;
  /// Peer SHARD primaries subscribed to this group's frontiers, and the
  /// monotone-merged frontiers received from them (keyed by shard index).
  std::vector<net::Endpoint> frontier_peers_;
  std::map<std::uint32_t, TimePoint> peer_frontiers_;
  /// Per-object §5 loss-injection overrides (shard-targeted chaos verbs).
  std::map<ObjectId, double> object_loss_override_;
  /// Stopped detectors of former peers.  Destroying a FailureDetector from
  /// inside its own peer-dead callback would free the executing object;
  /// parking it here keeps teardown safe and deterministic.
  std::vector<std::unique_ptr<FailureDetector>> retired_detectors_;
  std::vector<InterObjectConstraint> replicated_constraints_;
  std::map<ObjectId, UpdateTaskState> update_tasks_;
  std::map<ObjectId, AckState> ack_state_;
  /// Objects whose update transmissions fell due inside the open batch
  /// window, in staging order (dedup'd: a second send of the same object
  /// before the flush collapses onto the staged entry, which reads the
  /// store at flush time and so carries the newest version anyway).
  std::vector<ObjectId> staged_updates_;
  sim::EventHandle batch_flush_;
  std::map<ObjectId, WatchdogState> watchdogs_;
  /// Highest transfer id applied per sender: a reordered older transfer
  /// must not clobber newer constraint tables / watchdog periods.
  std::map<net::NodeId, std::uint64_t> transfer_high_water_;

  /// Registrations / state transfers not yet acknowledged by every peer.
  struct PendingTransfer {
    std::vector<ObjectId> ids;
    std::set<net::NodeId> awaiting;
    std::uint32_t attempts = 0;  ///< retries so far (capped by transfer_retry_limit)
    bool delta = false;          ///< retry re-encodes kStateDelta, not kStateTransfer
  };
  std::map<std::uint64_t, PendingTransfer> pending_transfers_;
  std::uint64_t next_transfer_id_ = 1;
  sim::EventHandle transfer_retry_;

  // ---- durability & crash recovery state ----
  store::DurableStore* storage_ = nullptr;  ///< null = in-memory replica
  /// Store versions at the instant of crash() — everything the replica
  /// could have acked.  restart() diffs the recovered state against this
  /// to feed the durable-recovery oracle.
  std::map<ObjectId, std::uint64_t> acked_at_crash_;
  sim::EventHandle resync_retry_;
  std::uint32_t resync_attempts_ = 0;
  bool resync_pending_ = false;

  bool started_ = false;
  bool crashed_ = false;
  bool successor_ = true;
  TimePoint promoted_at_{};

  /// Replication epoch: 1 for the initial primary, 0 (unknown) for fresh
  /// backups until they learn it from accepted traffic.
  std::uint64_t epoch_ = 0;
  /// Largest update payload registered so far (≥ the historical 1 KiB
  /// floor); sizes the frame used to derive the admission bound ℓ.
  std::size_t frame_budget_ = 1024;
  std::optional<net::LinkParams> link_params_;

  // ---- graceful degradation state ----
  /// Overload detector + RTT estimator (built at start()).
  std::unique_ptr<DegradationController> degrade_;
  /// Backoff for pending-transfer retries (seeded jitter drawn from rng_).
  std::optional<BackoffPolicy> transfer_backoff_;
  /// Primary-side record of each active downgrade: the original spec and
  /// period to restore, and when the downgrade was issued.
  struct QosState {
    ObjectSpec original;
    Duration original_period{};
    std::uint64_t qos_seq = 0;
    TimePoint since{};
  };
  std::map<ObjectId, QosState> downgrades_;
  /// Per-object newest renegotiation seq applied (backup-side reorder
  /// guard; carried into a promotion so a new primary's notices stay
  /// seq-newer).
  std::map<ObjectId, std::uint64_t> qos_applied_seq_;
  std::map<ObjectId, TimePoint> qos_notice_at_;
  std::uint64_t next_qos_seq_ = 1;
  sim::EventHandle qos_tick_;

  Rng rng_{0};
  std::uint64_t updates_shed_ = 0;
  std::uint64_t downgrades_sent_ = 0;
  std::uint64_t restores_sent_ = 0;
  std::uint64_t downgrades_received_ = 0;
  std::uint64_t transfer_give_ups_ = 0;
  std::uint64_t updates_sent_ = 0;
  std::uint64_t update_frames_sent_ = 0;
  std::uint64_t updates_batched_ = 0;
  std::uint64_t updates_loss_injected_ = 0;
  std::uint64_t updates_applied_ = 0;
  std::uint64_t stale_updates_ = 0;
  std::uint64_t nacks_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t epoch_rejections_ = 0;
  std::uint64_t role_rejections_ = 0;
  std::uint64_t frontier_frames_sent_ = 0;
  std::uint64_t frontier_frames_received_ = 0;
  std::uint64_t cross_epoch_applies_ = 0;
  std::uint64_t step_downs_ = 0;
  std::uint64_t recovery_lost_updates_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t resync_requests_sent_ = 0;
  std::uint64_t resync_deltas_sent_ = 0;
  std::uint64_t resync_fulls_sent_ = 0;
  std::uint64_t delta_entries_sent_ = 0;
};

}  // namespace rtpb::core
