// Umbrella header: the RTPB replication service public API.
//
//   #include "core/rtpb.hpp"
//
//   rtpb::core::ServiceParams params;
//   rtpb::core::RtpbService service(params);
//   service.start();
//   service.register_object(spec);
//   service.run_for(rtpb::seconds(10));
//
// See examples/quickstart.cpp for a complete walk-through.
#pragma once

#include "core/admission.hpp"     // IWYU pragma: export
#include "core/client.hpp"        // IWYU pragma: export
#include "core/heartbeat.hpp"     // IWYU pragma: export
#include "core/metrics.hpp"       // IWYU pragma: export
#include "core/name_service.hpp"  // IWYU pragma: export
#include "core/object_store.hpp"  // IWYU pragma: export
#include "core/server.hpp"        // IWYU pragma: export
#include "core/service.hpp"       // IWYU pragma: export
#include "core/types.hpp"         // IWYU pragma: export
#include "core/wire.hpp"          // IWYU pragma: export
#include "sched/theory.hpp"       // IWYU pragma: export
