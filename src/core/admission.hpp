// Admission control (paper §4.2).
//
// Before a client may stream updates for an object, the primary checks
//   (1) p_i ≤ δ_iP                — the client updates often enough,
//   (2) δ_i = δ_iB − δ_iP > ℓ    — the window can out-run the network,
//   (3) the update-transmission task set (period r_i = (δ_i − ℓ)/slack)
//       plus all client tasks passes a rate-monotonic schedulability test,
//   (4) every inter-object constraint δ_ij, converted to two external
//       constraints (§3), still holds.
// A rejected registration carries a reason so the client can negotiate an
// alternative quality of service.
//
// The controller maintains running aggregates (task count, total RM
// utilisation at the window-derived baseline periods) so a registration is
// amortised O(1): the schedulability check folds the candidate into the
// aggregate instead of re-deriving the whole admitted set.  Each object's
// baseline period is frozen at admission time — against the ℓ it was
// negotiated under — which is what makes the aggregate sound and what
// keeps a later ℓ change from silently re-judging old admissions.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "sched/analysis.hpp"
#include "util/result.hpp"

namespace rtpb::core {

struct AdmissionDecision {
  /// Assigned primary→backup transmission period r_i.
  Duration update_period{};
};

/// A rejection carries the reason plus, where one exists, a concrete
/// feasible alternative QoS for the same object — the paper's §4.2
/// "feedback so that the client can negotiate an alternative quality of
/// service".  Re-submitting the suggestion (when present) is guaranteed
/// to pass the same checks against the current admitted set.
struct AdmissionRejection {
  AdmissionError code{};
  std::string reason;
  std::optional<ObjectSpec> suggestion;
};

using AdmissionResult = Result<AdmissionDecision, AdmissionRejection>;
using AdmissionStatus = Status<Error<AdmissionError>>;

class AdmissionController {
 public:
  AdmissionController(ServiceConfig config, Duration link_delay_bound);

  /// Evaluate a registration.  On success the object is recorded and its
  /// transmission period returned.  Under compressed scheduling, periods
  /// of *all* admitted objects may be recomputed — read them back via
  /// update_periods().  Amortised O(1) (compressed-mode redistribution is
  /// deferred to the next period read).
  AdmissionResult admit(const ObjectSpec& spec);

  /// Remove an object and any constraints that reference it.  Constraint
  /// partners have their transmission periods re-derived from their own
  /// frozen baseline and the constraints that remain — a δ_ij tightening
  /// does not outlive the constraint that imposed it.
  void remove(ObjectId id);

  /// Register an inter-object constraint between two admitted objects.
  /// May tighten their transmission periods; re-runs schedulability (O(1),
  /// judged at the window-derived baselines like admission itself — a
  /// constraint must not be blocked by compressed-mode best-effort rates).
  /// A self-pair (first == second) caps just that object: the shard layer
  /// registers cross-shard δ_ij as one such external cap per side.
  AdmissionStatus add_constraint(const InterObjectConstraint& c);

  /// Withdraw one previously added constraint (matched by value); both
  /// members' periods are re-derived from their baselines and whatever
  /// constraints remain.  No-op if no such constraint exists.
  void remove_constraint(const InterObjectConstraint& c);

  /// Validate a constraint against the current admitted set WITHOUT
  /// committing it — add_constraint() is exactly this check followed by
  /// the commit.  The shard layer uses it to pre-flight both halves of a
  /// cross-shard constraint before committing either side.
  [[nodiscard]] AdmissionStatus check_constraint(const InterObjectConstraint& c) const;

  [[nodiscard]] const std::map<ObjectId, Duration>& update_periods() const {
    materialize_compressed();
    return update_periods_;
  }
  [[nodiscard]] Duration update_period(ObjectId id) const;
  [[nodiscard]] std::size_t admitted_count() const { return admitted_.size(); }
  [[nodiscard]] const std::vector<InterObjectConstraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] Duration link_delay_bound() const { return ell_; }

  /// Re-derive ℓ when the frame budget grows (a larger object was
  /// registered).  Applies to subsequent admissions; already-admitted
  /// objects keep the baseline they were negotiated under — their frozen
  /// periods enter later schedulability checks unchanged, so growing ℓ can
  /// never retroactively fail (or spuriously pass) an earlier admission.
  void set_link_delay_bound(Duration ell) { ell_ = ell; }

  /// Total utilisation of client + transmission tasks as admitted.
  [[nodiscard]] double total_utilization() const;

  /// Compute a feasible alternative spec for a rejected registration, or
  /// nullopt when no plausible relaxation exists.  Public so clients can
  /// pre-negotiate without a rejected attempt.
  [[nodiscard]] std::optional<ObjectSpec> suggest_alternative(const ObjectSpec& spec) const;

 private:
  /// Per-object admission record.  `baseline` is the window-derived §4.3
  /// period frozen at admit time (against the ℓ of that moment);
  /// `effective` is the baseline after inter-object tightening — the
  /// period the RM aggregate judges this object at, and (in normal
  /// scheduling) the period it transmits at.
  struct Admitted {
    ObjectSpec spec;
    Duration baseline{};
    Duration effective{};
    double client_util = 0.0;  ///< e_i / p_i
    double update_util = 0.0;  ///< e'_i / effective
  };

  /// All §4.2 checks against the current admitted set, without admitting.
  /// nullopt = would be admitted.  O(1) via the maintained aggregates.
  [[nodiscard]] std::optional<AdmissionError> check(const ObjectSpec& spec) const;
  /// Baseline §4.3 period from the object's window (before inter-object
  /// tightening): (δ_i − ℓ) / slack_factor.
  [[nodiscard]] Duration normal_period(const ObjectSpec& spec) const;
  /// Tightest δ_ij involving `id`, or Duration::max().
  [[nodiscard]] Duration tightest_constraint(ObjectId id) const;
  /// Re-derive `id`'s effective period (baseline ∧ remaining constraints)
  /// and fold the change into the aggregates.
  void refresh_effective(ObjectId id);
  /// The compressed-mode period for one object given the current spare
  /// capacity split (§5.3).
  [[nodiscard]] Duration compressed_period(const Admitted& a) const;
  /// Recompute compressed-mode periods for the whole admitted set if a
  /// membership change left them stale (deferred from admit/remove so a
  /// registration stays O(1)).
  void materialize_compressed() const;

  ServiceConfig config_;
  Duration ell_;
  std::map<ObjectId, Admitted> admitted_;
  /// Published periods.  Normal scheduling: always == effective.
  /// Compressed: redistributed lazily (mutable + dirty flag below).
  mutable std::map<ObjectId, Duration> update_periods_;
  mutable bool compressed_stale_ = false;
  std::vector<InterObjectConstraint> constraints_;
  /// Running RM aggregate: Σ (client_util + update_util) over admitted_,
  /// accumulated in admit order — the O(1) schedulability check compares
  /// this plus the candidate against the Liu–Layland bound.
  double util_sum_ = 0.0;
  /// Running Σ client_util alone (spare-capacity input for compressed).
  double client_util_sum_ = 0.0;
};

}  // namespace rtpb::core
