// Admission control (paper §4.2).
//
// Before a client may stream updates for an object, the primary checks
//   (1) p_i ≤ δ_iP                — the client updates often enough,
//   (2) δ_i = δ_iB − δ_iP > ℓ    — the window can out-run the network,
//   (3) the update-transmission task set (period r_i = (δ_i − ℓ)/slack)
//       plus all client tasks passes a rate-monotonic schedulability test,
//   (4) every inter-object constraint δ_ij, converted to two external
//       constraints (§3), still holds.
// A rejected registration carries a reason so the client can negotiate an
// alternative quality of service.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "sched/analysis.hpp"
#include "util/result.hpp"

namespace rtpb::core {

struct AdmissionDecision {
  /// Assigned primary→backup transmission period r_i.
  Duration update_period{};
};

/// A rejection carries the reason plus, where one exists, a concrete
/// feasible alternative QoS for the same object — the paper's §4.2
/// "feedback so that the client can negotiate an alternative quality of
/// service".  Re-submitting the suggestion (when present) is guaranteed
/// to pass the same checks against the current admitted set.
struct AdmissionRejection {
  AdmissionError code{};
  std::string reason;
  std::optional<ObjectSpec> suggestion;
};

using AdmissionResult = Result<AdmissionDecision, AdmissionRejection>;
using AdmissionStatus = Status<Error<AdmissionError>>;

class AdmissionController {
 public:
  AdmissionController(ServiceConfig config, Duration link_delay_bound);

  /// Evaluate a registration.  On success the object is recorded and its
  /// transmission period returned.  Under compressed scheduling, periods
  /// of *all* admitted objects may be recomputed — read them back via
  /// update_periods().
  AdmissionResult admit(const ObjectSpec& spec);

  /// Remove an object (and any constraints that reference it).
  void remove(ObjectId id);

  /// Register an inter-object constraint between two admitted objects.
  /// May tighten their transmission periods; re-runs schedulability.
  AdmissionStatus add_constraint(const InterObjectConstraint& c);

  [[nodiscard]] const std::map<ObjectId, Duration>& update_periods() const {
    return update_periods_;
  }
  [[nodiscard]] Duration update_period(ObjectId id) const;
  [[nodiscard]] std::size_t admitted_count() const { return specs_.size(); }
  [[nodiscard]] const std::vector<InterObjectConstraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] Duration link_delay_bound() const { return ell_; }

  /// Re-derive ℓ when the frame budget grows (a larger object was
  /// registered).  Applies to subsequent admissions; already-admitted
  /// periods keep the bound they were negotiated under.
  void set_link_delay_bound(Duration ell) { ell_ = ell; }

  /// Total utilisation of client + transmission tasks as admitted.
  [[nodiscard]] double total_utilization() const;

  /// Compute a feasible alternative spec for a rejected registration, or
  /// nullopt when no plausible relaxation exists.  Public so clients can
  /// pre-negotiate without a rejected attempt.
  [[nodiscard]] std::optional<ObjectSpec> suggest_alternative(const ObjectSpec& spec) const;

 private:
  /// All §4.2 checks against the current admitted set, without admitting.
  /// nullopt = would be admitted.
  [[nodiscard]] std::optional<AdmissionError> check(const ObjectSpec& spec) const;
  /// Baseline §4.3 period from the object's window (before inter-object
  /// tightening): (δ_i − ℓ) / slack_factor.
  [[nodiscard]] Duration normal_period(const ObjectSpec& spec) const;
  /// Tightest δ_ij involving `id`, or Duration::max().
  [[nodiscard]] Duration tightest_constraint(ObjectId id) const;
  /// Recompute compressed-mode periods for the whole admitted set.
  void recompute_compressed();
  /// Schedulability of client tasks + hypothetical update periods.
  [[nodiscard]] bool schedulable(const std::map<ObjectId, Duration>& periods,
                                 const ObjectSpec* extra) const;

  ServiceConfig config_;
  Duration ell_;
  std::map<ObjectId, ObjectSpec> specs_;
  std::map<ObjectId, Duration> update_periods_;
  std::vector<InterObjectConstraint> constraints_;
};

}  // namespace rtpb::core
