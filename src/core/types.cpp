#include "core/types.hpp"

namespace rtpb::core {

const char* admission_error_name(AdmissionError e) {
  switch (e) {
    case AdmissionError::kInvalidSpec: return "invalid-spec";
    case AdmissionError::kPeriodExceedsDelta: return "period-exceeds-delta";
    case AdmissionError::kWindowTooSmall: return "window-too-small";
    case AdmissionError::kUnschedulable: return "unschedulable";
    case AdmissionError::kInterObjectViolation: return "inter-object-violation";
    case AdmissionError::kUnknownObject: return "unknown-object";
    case AdmissionError::kDuplicate: return "duplicate-object";
  }
  return "?";
}

}  // namespace rtpb::core
