#include "core/faults.hpp"

#include "util/log.hpp"

namespace rtpb::core {

FaultPlan& FaultPlan::loss_storm(TimePoint from, TimePoint until, double probability) {
  at(from, "loss-storm-start", [this, probability] {
    service_.acting_primary().set_update_loss_probability(probability);
  });
  at(until, "loss-storm-end",
     [this] { service_.acting_primary().set_update_loss_probability(0.0); });
  return *this;
}

FaultPlan& FaultPlan::link_degradation(TimePoint from, TimePoint until, double probability) {
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  at(from, "link-degradation-start",
     [this, a, b, probability] { service_.network().set_loss_probability(a, b, probability); });
  at(until, "link-degradation-end",
     [this, a, b] { service_.network().set_loss_probability(a, b, 0.0); });
  return *this;
}

FaultPlan& FaultPlan::crash_primary(TimePoint when) {
  return at(when, "crash-primary", [this] { service_.crash_primary(); });
}

FaultPlan& FaultPlan::crash_backup(TimePoint when) {
  return at(when, "crash-backup", [this] { service_.crash_backup(); });
}

FaultPlan& FaultPlan::add_standby(TimePoint when) {
  return at(when, "add-standby", [this] { service_.add_standby(); });
}

FaultPlan& FaultPlan::at(TimePoint when, std::string label, std::function<void()> action) {
  RTPB_EXPECTS(!armed_);
  RTPB_EXPECTS(action != nullptr);
  actions_.push_back({when, std::move(label), std::move(action)});
  return *this;
}

void FaultPlan::arm() {
  RTPB_EXPECTS(!armed_);
  armed_ = true;
  for (auto& action : actions_) {
    service_.simulator().schedule_at(
        action.when, [this, label = action.label, fn = std::move(action.fn)] {
          RTPB_INFO("faults", "firing %s", label.c_str());
          fired_.push_back(label);
          fn();
        });
  }
}

}  // namespace rtpb::core
