#include "core/faults.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "util/log.hpp"

namespace rtpb::core {

FaultPlan& FaultPlan::loss_storm(TimePoint from, TimePoint until, double probability) {
  at(from, "loss-storm-start", [this, probability] {
    service_.acting_primary().set_update_loss_probability(probability);
  });
  at(until, "loss-storm-end",
     [this] { service_.acting_primary().set_update_loss_probability(0.0); });
  return *this;
}

FaultPlan& FaultPlan::link_degradation(TimePoint from, TimePoint until, double probability) {
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  at(from, "link-degradation-start",
     [this, a, b, probability] { service_.network().set_loss_probability(a, b, probability); });
  at(until, "link-degradation-end",
     [this, a, b] { service_.network().set_loss_probability(a, b, 0.0); });
  return *this;
}

FaultPlan& FaultPlan::duplication_burst(TimePoint from, TimePoint until, double probability) {
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  at(from, "dup-burst-start", [this, a, b, probability] {
    net::LinkFaults f = service_.network().faults(a, b);
    f.duplicate_probability = probability;
    service_.network().set_faults(a, b, f);
  });
  at(until, "dup-burst-end", [this, a, b] {
    net::LinkFaults f = service_.network().faults(a, b);
    f.duplicate_probability = 0.0;
    service_.network().set_faults(a, b, f);
  });
  return *this;
}

FaultPlan& FaultPlan::reorder_burst(TimePoint from, TimePoint until, double probability,
                                    Duration extra) {
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  at(from, "reorder-burst-start", [this, a, b, probability, extra] {
    net::LinkFaults f = service_.network().faults(a, b);
    f.reorder_probability = probability;
    f.reorder_extra = extra;
    service_.network().set_faults(a, b, f);
  });
  at(until, "reorder-burst-end", [this, a, b] {
    net::LinkFaults f = service_.network().faults(a, b);
    f.reorder_probability = 0.0;
    service_.network().set_faults(a, b, f);
  });
  return *this;
}

FaultPlan& FaultPlan::burst_loss(TimePoint from, TimePoint until, double enter_probability,
                                 std::uint32_t burst_length) {
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  at(from, "burst-loss-start", [this, a, b, enter_probability, burst_length] {
    net::LinkFaults f = service_.network().faults(a, b);
    f.burst_loss_probability = enter_probability;
    f.burst_length = burst_length;
    service_.network().set_faults(a, b, f);
  });
  at(until, "burst-loss-end", [this, a, b] {
    net::LinkFaults f = service_.network().faults(a, b);
    f.burst_loss_probability = 0.0;
    service_.network().set_faults(a, b, f);
  });
  return *this;
}

FaultPlan& FaultPlan::corruption_burst(TimePoint from, TimePoint until, double probability) {
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  at(from, "corruption-start", [this, a, b, probability] {
    net::LinkFaults f = service_.network().faults(a, b);
    f.corrupt_probability = probability;
    service_.network().set_faults(a, b, f);
  });
  at(until, "corruption-end", [this, a, b] {
    net::LinkFaults f = service_.network().faults(a, b);
    f.corrupt_probability = 0.0;
    service_.network().set_faults(a, b, f);
  });
  return *this;
}

FaultPlan& FaultPlan::cpu_spike(TimePoint from, TimePoint until, double fraction) {
  RTPB_EXPECTS(fraction > 0.0 && fraction < 1.0);
  // The hog task id travels start→end through a shared slot; the end
  // action must tolerate the primary having crashed (its CPU dies with
  // it) or never having started the spike.
  auto task = std::make_shared<sched::TaskId>(sched::kInvalidTask);
  at(from, "cpu-spike-start", [this, task, fraction] {
    ReplicaServer& primary = service_.acting_primary();
    if (primary.crashed()) return;
    const Duration period = millis(5);
    sched::TaskSpec spec;
    spec.name = "chaos-cpu-hog";
    spec.period = period;
    spec.wcet = period.scaled(fraction);
    *task = primary.cpu().add_task(spec, [](const sched::JobInfo&) {});
  });
  at(until, "cpu-spike-end", [this, task] {
    ReplicaServer& primary = service_.acting_primary();
    if (*task == sched::kInvalidTask || !primary.cpu().has_task(*task)) return;
    primary.cpu().remove_task(*task);
    *task = sched::kInvalidTask;
  });
  return *this;
}

FaultPlan& FaultPlan::throttle_bandwidth(TimePoint from, TimePoint until, double fraction) {
  RTPB_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  auto original = std::make_shared<double>(0.0);
  at(from, "throttle-bandwidth-start", [this, a, b, fraction, original] {
    const auto params = service_.network().link_params(a, b);
    if (!params) return;
    *original = params->bandwidth_bps;
    // An infinite link (<=0) has nothing to throttle against a fraction.
    if (*original <= 0.0) return;
    service_.network().set_bandwidth(a, b, *original * fraction);
  });
  at(until, "throttle-bandwidth-end", [this, a, b, original] {
    if (*original <= 0.0) return;
    service_.network().set_bandwidth(a, b, *original);
  });
  return *this;
}

FaultPlan& FaultPlan::inflate_latency(TimePoint from, TimePoint until, Duration extra) {
  RTPB_EXPECTS(extra > Duration::zero());
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  auto original = std::make_shared<Duration>();
  at(from, "inflate-latency-start", [this, a, b, extra, original] {
    const auto params = service_.network().link_params(a, b);
    if (!params) return;
    *original = params->propagation;
    service_.network().set_propagation(a, b, *original + extra);
  });
  at(until, "inflate-latency-end",
     [this, a, b, original] { service_.network().set_propagation(a, b, *original); });
  return *this;
}

FaultPlan& FaultPlan::partition_primary(TimePoint when) {
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  return at(when, "partition-primary",
            [this, a, b] { service_.network().set_loss_probability(a, b, 1.0); });
}

FaultPlan& FaultPlan::crash_primary(TimePoint when) {
  return at(when, "crash-primary", [this] { service_.crash_primary(); });
}

FaultPlan& FaultPlan::crash_backup(TimePoint when) {
  return at(when, "crash-backup", [this] { service_.crash_backup(); });
}

FaultPlan& FaultPlan::add_standby(TimePoint when) {
  return at(when, "add-standby", [this] { service_.add_standby(); });
}

FaultPlan& FaultPlan::crash_restart_primary(TimePoint when, TimePoint restart_at) {
  RTPB_EXPECTS(restart_at > when);
  at(when, "crash-restart-primary", [this] {
    if (!service_.primary().crashed()) service_.crash_primary();
  });
  at(restart_at, "restart-primary", [this] {
    if (service_.params().durable && service_.primary().crashed()) service_.restart_primary();
  });
  return *this;
}

FaultPlan& FaultPlan::crash_restart_backup(TimePoint when, TimePoint restart_at) {
  RTPB_EXPECTS(restart_at > when);
  at(when, "crash-restart-backup", [this] {
    if (!service_.backup().crashed()) service_.crash_backup();
  });
  at(restart_at, "restart-backup", [this] {
    if (service_.params().durable && service_.backup().crashed()) service_.restart_backup(0);
  });
  return *this;
}

FaultPlan& FaultPlan::tear_wal_tail(TimePoint when, std::size_t replica_index,
                                    std::size_t bytes) {
  char label[64];
  std::snprintf(label, sizeof label, "tear-wal-tail(replica=%zu,bytes=%zu)", replica_index,
                bytes);
  return at(when, label, [this, replica_index, bytes] {
    store::SimStorageDevice* dev = service_.wal_device(replica_index);
    if (dev != nullptr) dev->tear_tail(bytes);
  });
}

namespace {
bool candidate_fires(RtpbService& service, const char* label, double probability) {
  sim::Simulator& sim = service.simulator();
  return sim.decide_fault(sim::ChoiceContext{sim::ChoiceKind::kFault, probability, 0, 0, label},
                          sim.rng());
}
}  // namespace

FaultPlan& FaultPlan::maybe_crash_primary(TimePoint when, double probability) {
  return at(when, "maybe-crash-primary", [this, probability] {
    if (service_.primary().crashed()) return;
    if (!candidate_fires(service_, "crash-primary", probability)) return;
    service_.crash_primary();
  });
}

FaultPlan& FaultPlan::maybe_crash_backup(TimePoint when, double probability) {
  return at(when, "maybe-crash-backup", [this, probability] {
    if (service_.backup().crashed()) return;
    if (!candidate_fires(service_, "crash-backup", probability)) return;
    service_.crash_backup();
  });
}

FaultPlan& FaultPlan::maybe_add_standby(TimePoint when, double probability) {
  return at(when, "maybe-add-standby", [this, probability] {
    if (service_.standby() != nullptr) return;
    if (!candidate_fires(service_, "add-standby", probability)) return;
    service_.add_standby();
  });
}

FaultPlan& FaultPlan::maybe_crash_restart_primary(TimePoint when, Duration restart_delay,
                                                  double probability) {
  RTPB_EXPECTS(restart_delay > Duration::zero());
  // The restart half only fires if the crash half actually drew "yes":
  // the decision travels through a shared slot, so an un-fired candidate
  // leaves the trajectory untouched.
  auto fired = std::make_shared<bool>(false);
  at(when, "maybe-crash-restart-primary", [this, fired, probability] {
    if (!service_.params().durable || service_.primary().crashed()) return;
    if (!candidate_fires(service_, "crash-restart-primary", probability)) return;
    *fired = true;
    service_.crash_primary();
  });
  at(when + restart_delay, "maybe-restart-primary", [this, fired] {
    if (*fired && service_.primary().crashed()) service_.restart_primary();
  });
  return *this;
}

FaultPlan& FaultPlan::maybe_crash_restart_backup(TimePoint when, Duration restart_delay,
                                                 double probability) {
  RTPB_EXPECTS(restart_delay > Duration::zero());
  auto fired = std::make_shared<bool>(false);
  at(when, "maybe-crash-restart-backup", [this, fired, probability] {
    if (!service_.params().durable || service_.backup().crashed()) return;
    if (!candidate_fires(service_, "crash-restart-backup", probability)) return;
    *fired = true;
    service_.crash_backup();
  });
  at(when + restart_delay, "maybe-restart-backup", [this, fired] {
    if (*fired && service_.backup().crashed()) service_.restart_backup(0);
  });
  return *this;
}

FaultPlan& FaultPlan::maybe_partition_primary(TimePoint when, double probability) {
  const net::NodeId a = service_.primary().node();
  const net::NodeId b = service_.backup().node();
  return at(when, "maybe-partition-primary", [this, a, b, probability] {
    if (service_.primary().crashed() || service_.backup().crashed()) return;
    if (!candidate_fires(service_, "partition-primary", probability)) return;
    service_.network().set_loss_probability(a, b, 1.0);
  });
}

FaultPlan& FaultPlan::at(TimePoint when, std::string label, std::function<void()> action) {
  RTPB_EXPECTS(!armed_);
  RTPB_EXPECTS(action != nullptr);
  actions_.push_back({when, std::move(label), std::move(action)});
  return *this;
}

void FaultPlan::arm() {
  RTPB_EXPECTS(!armed_);
  armed_ = true;
  // Schedule in virtual-time order (stable, so insertion order breaks
  // ties): fired() then reads as a timeline no matter how the plan was
  // phrased.  Actions already in the past fire at the current instant.
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const Action& a, const Action& b) { return a.when < b.when; });
  const TimePoint now = service_.simulator().now();
  for (auto& action : actions_) {
    service_.simulator().schedule_at(
        std::max(action.when, now), [this, label = action.label, fn = std::move(action.fn)] {
          RTPB_INFO("faults", "firing %s", label.c_str());
          fired_.push_back(label);
          fn();
        });
  }
}

}  // namespace rtpb::core
