#include "core/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rtpb::core {

void Metrics::track_object(ObjectId id, Duration window, Duration client_period) {
  ObjectTrack& t = objects_[id];
  t.window = window;
  t.client_period = client_period;
}

void Metrics::untrack_object(ObjectId id) { objects_.erase(id); }

void Metrics::ObjectTrack::refresh(TimePoint now) {
  if (!primary_written || !backup_applied) return;
  const Duration distance = primary_ts - backup_origin_ts;
  max_distance = std::max(max_distance, distance);
  if (distance > window) {
    inconsistency.open(now);
  } else {
    inconsistency.close(now);
  }
}

void Metrics::on_primary_write(ObjectId id, TimePoint ts) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  ObjectTrack& t = it->second;
  t.primary_ts = std::max(t.primary_ts, ts);
  t.primary_written = true;
  t.refresh(ts);
}

void Metrics::on_backup_apply(ObjectId id, TimePoint origin_ts, TimePoint now) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  ObjectTrack& t = it->second;
  t.backup_origin_ts = std::max(t.backup_origin_ts, origin_ts);
  t.backup_applied = true;
  t.refresh(now);
}

void Metrics::poll(TimePoint now) {
  for (auto& [id, t] : objects_) t.refresh(now);
}

void Metrics::finish(TimePoint now) {
  for (auto& [id, t] : objects_) {
    // An object the backup never caught up on has been maximally stale.
    if (t.primary_written && !t.backup_applied) {
      t.max_distance = std::max(t.max_distance, t.primary_ts - t.backup_origin_ts);
    }
    t.inconsistency.finish(now);
  }
}

void Metrics::reset_statistics() {
  response_times_.clear();
  for (auto& [id, t] : objects_) {
    t.max_distance = Duration::zero();
    const bool was_open = t.inconsistency.is_open();
    t.inconsistency = IntervalRecorder{};
    // If reset lands mid-violation, keep the interval open from the reset
    // point so its tail still counts.
    if (was_open) t.inconsistency.open(TimePoint::zero());
  }
}

double Metrics::average_max_distance_ms() const {
  if (objects_.empty()) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, t] : objects_) {
    if (!t.primary_written) continue;
    sum += t.max_distance.millis();
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double Metrics::average_max_excess_distance_ms() const {
  if (objects_.empty()) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, t] : objects_) {
    if (!t.primary_written) continue;
    sum += std::max(Duration::zero(), t.max_distance - t.client_period).millis();
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double Metrics::mean_inconsistency_duration_ms() const {
  double total_ms = 0.0;
  std::uint64_t intervals = 0;
  for (const auto& [id, t] : objects_) {
    total_ms += t.inconsistency.total().millis();
    intervals += t.inconsistency.interval_count();
  }
  return intervals > 0 ? total_ms / static_cast<double>(intervals) : 0.0;
}

Duration Metrics::total_inconsistency() const {
  Duration total{};
  for (const auto& [id, t] : objects_) total += t.inconsistency.total();
  return total;
}

std::uint64_t Metrics::inconsistency_intervals() const {
  std::uint64_t n = 0;
  for (const auto& [id, t] : objects_) n += t.inconsistency.interval_count();
  return n;
}

Duration Metrics::max_distance(ObjectId id) const {
  auto it = objects_.find(id);
  RTPB_EXPECTS(it != objects_.end());
  return it->second.max_distance;
}

bool Metrics::in_violation(ObjectId id) const {
  auto it = objects_.find(id);
  RTPB_EXPECTS(it != objects_.end());
  return it->second.inconsistency.is_open();
}

Duration Metrics::current_distance(ObjectId id) const {
  auto it = objects_.find(id);
  RTPB_EXPECTS(it != objects_.end());
  const ObjectTrack& t = it->second;
  if (!t.primary_written || !t.backup_applied) return Duration::zero();
  return t.primary_ts - t.backup_origin_ts;
}

Duration Metrics::window_of(ObjectId id) const {
  auto it = objects_.find(id);
  RTPB_EXPECTS(it != objects_.end());
  return it->second.window;
}

}  // namespace rtpb::core
