// Graceful degradation under overload.
//
// The paper's admission control (§4.2) guarantees temporal consistency
// only for the load it admitted; once the environment degrades — latency
// inflated past ℓ, bandwidth throttled, CPU stolen — the original
// guarantees are unkeepable.  This module gives the primary the machinery
// to degrade *predictably* instead of failing silently:
//
//  - RttEstimator: Jacobson-style smoothed RTT + variance over ping acks,
//    driving failure-detector timeouts and update-ack deadlines so
//    timeouts track the network the service actually has.
//  - BackoffPolicy: exponential backoff with seeded jitter and a retry
//    cap, for state-transfer / registration retries.
//  - DegradationController: overload detection from ack-lag EWMAs,
//    send-queue depth and missed transmission windows, with hysteresis on
//    the way out so QoS restores never flap.
//
// Shedding and QoS renegotiation themselves live in ReplicaServer (they
// need the store, the admission controller and the wire); this module is
// the measurement + policy core, unit-testable without a server.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace rtpb::telemetry {
class SloMonitor;
}  // namespace rtpb::telemetry

namespace rtpb::core {

/// Jacobson/Karn RTT estimation (RFC 6298 flavour): SRTT and RTTVAR
/// EWMAs with the classic gains α = 1/8, β = 1/4, and RTO = SRTT +
/// 4·RTTVAR.  Callers enforce Karn's rule by only feeding samples from
/// unambiguous (non-retransmitted) exchanges.
class RttEstimator {
 public:
  void sample(Duration rtt);
  void reset();

  [[nodiscard]] bool has_sample() const { return samples_ > 0; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] Duration srtt() const { return srtt_; }
  [[nodiscard]] Duration rttvar() const { return rttvar_; }
  /// SRTT + 4·RTTVAR; zero until the first sample.
  [[nodiscard]] Duration rto() const;

 private:
  Duration srtt_{};
  Duration rttvar_{};
  std::uint64_t samples_ = 0;
};

/// Exponential backoff with seeded jitter: delay k is
/// base × 2^min(k, 16), multiplied by a uniform factor in
/// [1 − jitter, 1 + jitter] drawn from the caller's Rng (so backoff
/// stays inside the experiment's deterministic draw stream), and capped.
class BackoffPolicy {
 public:
  struct Params {
    Duration base{};
    Duration cap{};
    double jitter = 0.25;
  };

  explicit BackoffPolicy(Params p) : params_(p) {}

  /// The delay before the next attempt; advances the backoff level.
  [[nodiscard]] Duration next(Rng& rng);
  void reset() { level_ = 0; }
  [[nodiscard]] std::uint32_t level() const { return level_; }

 private:
  Params params_;
  std::uint32_t level_ = 0;
};

/// Detects overload from three independent signals and exposes a
/// hysteresis-filtered state:
///
///  - ack-lag EWMA: the smoothed ping RTT exceeds `rtt_factor` times the
///    link's no-queueing baseline (2ℓ) — queueing is building up;
///  - send-queue depth: the staged update queue exceeds `queue_depth`;
///  - missed transmission windows: an update's slack expired before it
///    could be shipped.
///
/// Any trigger enters the overloaded state; the state is left only after
/// `overload_hold` without a trigger, and QoS restore additionally waits
/// for `calm_for()` ≥ the caller's restore hold.
class DegradationController {
 public:
  struct Params {
    Duration rtt_baseline{};        ///< 2ℓ: round trip with empty queues
    double rtt_factor = 4.0;
    std::size_t queue_depth = 16;
    Duration overload_hold = millis(200);
  };

  explicit DegradationController(Params p) : params_(p) {}

  /// Feed a ping-ack RTT sample (Karn-filtered by the caller).
  void on_rtt_sample(TimePoint now, Duration rtt);
  /// Feed the staged send-queue depth at a batch flush.
  void on_queue_depth(TimePoint now, std::size_t depth);
  /// A transmission window was missed (slack expired before shipping).
  void on_missed_window(TimePoint now);

  [[nodiscard]] bool overloaded(TimePoint now) const;
  /// Time since the last overload trigger (Duration::max() if none ever).
  [[nodiscard]] Duration calm_for(TimePoint now) const;

  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }
  [[nodiscard]] std::uint64_t missed_windows() const { return missed_windows_; }

  /// Mirror every overload trigger into the temporal-slack SLO monitor as
  /// a degradation signal (pure observer; may be null).
  void set_slo(telemetry::SloMonitor* slo) { slo_ = slo; }

  void reset();

 private:
  void trigger(TimePoint now, const char* kind);

  Params params_;
  RttEstimator rtt_;
  telemetry::SloMonitor* slo_ = nullptr;
  bool triggered_ever_ = false;
  TimePoint last_trigger_{};
  std::uint64_t triggers_ = 0;
  std::uint64_t missed_windows_ = 0;
};

}  // namespace rtpb::core
