// Scripted fault injection for experiments and chaos tests.
//
// A FaultPlan is a timeline of actions applied to a running RtpbService:
// loss storms, link degradation, node crashes, standby recruitment.  The
// plan arms itself on the service's simulator, so faults land at exact
// virtual times regardless of how the experiment slices its run_for calls.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/service.hpp"

namespace rtpb::core {

class FaultPlan {
 public:
  explicit FaultPlan(RtpbService& service) : service_(service) {}

  /// Inject update-stream loss (the paper's §5 loss knob) on the primary
  /// from `from` until `until`.
  FaultPlan& loss_storm(TimePoint from, TimePoint until, double probability);

  /// Degrade the genuine link (every message class at risk) between the
  /// primary and the designated-successor backup.
  FaultPlan& link_degradation(TimePoint from, TimePoint until, double probability);

  /// Duplicate messages on the primary↔backup link with `probability`
  /// between `from` and `until` (tests at-most-once handling above UDP).
  FaultPlan& duplication_burst(TimePoint from, TimePoint until, double probability);

  /// Exempt messages from FIFO delivery with `probability`, delaying each
  /// exempted message by up to `extra` so later sends overtake it.
  FaultPlan& reorder_burst(TimePoint from, TimePoint until, double probability,
                           Duration extra = millis(2));

  /// Correlated loss: each message may open a burst (probability
  /// `enter_probability`) that swallows `burst_length` consecutive frames.
  FaultPlan& burst_loss(TimePoint from, TimePoint until, double enter_probability,
                        std::uint32_t burst_length);

  /// Flip one random bit per affected frame (the transport checksum must
  /// catch these; to the service they look like loss).
  FaultPlan& corruption_burst(TimePoint from, TimePoint until, double probability);

  /// Steal `fraction` of the acting primary's CPU between `from` and
  /// `until` with a short-period hog task (5 ms period, wcet =
  /// fraction × period).  Under RM the hog outranks every admitted update
  /// task, so their releases slip — the overload DegradationController
  /// must absorb.
  FaultPlan& cpu_spike(TimePoint from, TimePoint until, double fraction);

  /// Throttle the primary↔backup link to `fraction` of its configured
  /// bandwidth between `from` and `until` (queueing delay growth; the
  /// shedding + renegotiation path must keep violations announced).
  FaultPlan& throttle_bandwidth(TimePoint from, TimePoint until, double fraction);

  /// Add `extra` to the link's base propagation delay between `from` and
  /// `until` (RTT inflation; adaptive timeouts must widen instead of
  /// spuriously declaring the peer dead).
  FaultPlan& inflate_latency(TimePoint from, TimePoint until, Duration extra);

  /// Partition the original primary from the designated-successor backup
  /// at `at` (loss 1.0, both directions, permanently).  The successor
  /// declares the primary dead and promotes while the old primary keeps
  /// running — the split-brain scenario epoch fencing must resolve.
  FaultPlan& partition_primary(TimePoint at);

  /// Crash the primary at `at`.
  FaultPlan& crash_primary(TimePoint at);
  /// Crash the successor backup at `at`.
  FaultPlan& crash_backup(TimePoint at);
  /// Recruit a fresh standby at `at` (wired to whoever is primary then).
  FaultPlan& add_standby(TimePoint at);

  /// Crash the original primary at `at` and power it back up from its
  /// durable state at `restart_at` (durable mode only; it rejoins as a
  /// backup via incremental resync).  The crash half no-ops if the replica
  /// is already down; the restart half no-ops if it is not.
  FaultPlan& crash_restart_primary(TimePoint at, TimePoint restart_at);
  /// Same for the successor backup.
  FaultPlan& crash_restart_backup(TimePoint at, TimePoint restart_at);
  /// Sabotage: shear `bytes` off the tail of replica `replica_index`'s WAL
  /// device at `at` (index in for_each_replica order).  Run against a
  /// replica that is down, this forges a durability hole the
  /// durable-recovery oracle MUST catch on restart — the harness canary.
  FaultPlan& tear_wal_tail(TimePoint at, std::size_t replica_index, std::size_t bytes);

  /// Fault *candidates* for the bounded explorer: at `when` the action
  /// consults the simulator's choice seam (ChoiceKind::kFault) and fires
  /// only if the installed policy says so.  Under the default RNG strategy
  /// the decision is bernoulli(probability), and the 0.0 default draws
  /// nothing at all — arming candidates never perturbs chaos digests.
  /// Each candidate guards itself against an impossible target (already
  /// crashed, standby already recruited), so policies may say "yes"
  /// liberally.
  FaultPlan& maybe_crash_primary(TimePoint when, double probability = 0.0);
  FaultPlan& maybe_crash_backup(TimePoint when, double probability = 0.0);
  FaultPlan& maybe_add_standby(TimePoint when, double probability = 0.0);
  FaultPlan& maybe_partition_primary(TimePoint when, double probability = 0.0);
  /// Crash-restart candidates (durable mode only): if the choice seam says
  /// yes at `when`, crash and power back up `restart_delay` later.
  FaultPlan& maybe_crash_restart_primary(TimePoint when, Duration restart_delay,
                                         double probability = 0.0);
  FaultPlan& maybe_crash_restart_backup(TimePoint when, Duration restart_delay,
                                        double probability = 0.0);

  /// Arbitrary scripted action.
  FaultPlan& at(TimePoint when, std::string label, std::function<void()> action);

  /// Schedule every recorded action on the service's simulator.  May be
  /// called at most once.  Actions whose time is already in the past fire
  /// deterministically at the current virtual instant, in plan order.
  void arm();

  /// Labels of actions that have fired so far, in virtual-time order
  /// (insertion order breaks ties at equal times).
  [[nodiscard]] const std::vector<std::string>& fired() const { return fired_; }

 private:
  struct Action {
    TimePoint when;
    std::string label;
    std::function<void()> fn;
  };

  RtpbService& service_;
  std::vector<Action> actions_;
  std::vector<std::string> fired_;
  bool armed_ = false;
};

}  // namespace rtpb::core
