#include "core/health.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "core/service.hpp"

namespace rtpb::core {

namespace {

std::string fmt_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

HealthFeed::HealthFeed(RtpbService& service, std::ostream& out, std::vector<ObjectId> objects,
                       Duration period)
    : service_(service),
      out_(out),
      objects_(std::move(objects)),
      timer_(service.simulator(), period, [this] { emit(); },
             sim::EventTag{sim::kTagObserver, 0, 0}) {}

void HealthFeed::start() { timer_.start(); }

void HealthFeed::stop() { timer_.stop(); }

void HealthFeed::emit() {
  const TimePoint now = service_.simulator().now();
  const Metrics& metrics = service_.metrics();
  const ReplicaServer* acting_primary = nullptr;
  service_.for_each_replica([&acting_primary](const ReplicaServer& r) {
    if (!r.crashed() && r.role() == Role::kPrimary && acting_primary == nullptr) {
      acting_primary = &r;
    }
  });

  service_.for_each_replica([&](const ReplicaServer& r) {
    std::string line;
    line.reserve(256);
    line += "{\"type\":\"health\",\"ts_ms\":";
    line += fmt_ms(now.millis());
    line += ",\"node\":" + std::to_string(r.node());
    line += std::string(",\"role\":\"") + role_name(r.role()) + "\"";
    line += ",\"epoch\":" + std::to_string(r.epoch());
    line += std::string(",\"crashed\":") + (r.crashed() ? "true" : "false");
    const DegradationController* deg = r.degradation();
    if (deg != nullptr) {
      line += ",\"rto_ms\":" + fmt_ms(deg->rtt().rto().millis());
      line += std::string(",\"overloaded\":") + (deg->overloaded(now) ? "true" : "false");
      line += ",\"degradation_triggers\":" + std::to_string(deg->triggers());
    }
    line += ",\"queue\":" + std::to_string(r.staged_update_count());
    line += ",\"shed\":" + std::to_string(r.updates_shed());
    // Sharded deployments: the peer-shard frontiers this replica has
    // merged so far (single-group runs never receive kFrontier frames and
    // emit nothing, keeping pre-shard feed lines byte-identical).
    if (!r.peer_frontiers().empty()) {
      line += ",\"frontiers\":[";
      bool first_front = true;
      for (const auto& [shard, ts] : r.peer_frontiers()) {
        if (!first_front) line += ",";
        first_front = false;
        line += "{\"shard\":" + std::to_string(shard) +
                ",\"stable_ms\":" + fmt_ms(ts.millis()) + "}";
      }
      line += "]";
    }
    line += ",\"updates_sent\":" + std::to_string(r.updates_sent());
    line += ",\"updates_applied\":" + std::to_string(r.updates_applied());

    // Peer ack-lag: how many versions behind this replica's copy each peer's
    // newest acknowledged version is, maximised over the admitted objects.
    // Only populated in per-update-ack mode (acked versions are 0 otherwise).
    if (!r.peers().empty() && !objects_.empty()) {
      line += ",\"peers\":[";
      bool first_peer = true;
      for (const net::Endpoint& p : r.peers()) {
        if (!first_peer) line += ",";
        first_peer = false;
        std::uint64_t max_lag = 0;
        for (ObjectId id : objects_) {
          const auto state = r.read(id);
          if (!state) continue;
          const std::uint64_t acked = r.peer_acked_version(p.node, id);
          if (acked > 0 && state->version > acked) {
            max_lag = std::max(max_lag, state->version - acked);
          }
        }
        line += "{\"node\":" + std::to_string(p.node) +
                ",\"max_ack_lag\":" + std::to_string(max_lag) + "}";
      }
      line += "]";
    }

    // Per-object temporal-consistency state, reported from the acting
    // primary's line (the Metrics tracker holds the service-wide view).
    if (&r == acting_primary && !objects_.empty()) {
      line += ",\"objects\":[";
      bool first_obj = true;
      for (ObjectId id : objects_) {
        if (!first_obj) line += ",";
        first_obj = false;
        const Duration window = metrics.window_of(id);
        const Duration distance = metrics.current_distance(id);
        const Duration margin = window - distance;
        line += "{\"id\":" + std::to_string(id);
        line += ",\"distance_ms\":" + fmt_ms(distance.millis());
        line += ",\"window_ms\":" + fmt_ms(window.millis());
        line += ",\"margin_ms\":" + fmt_ms(margin.millis());
        line += std::string(",\"downgraded\":") +
                (r.qos_downgrade_active(id) ? "true" : "false");
        line += "}";
      }
      line += "]";
    }

    line += "}\n";
    out_ << line;
    ++snapshots_;
  });
}

}  // namespace rtpb::core
